"""The perf-regression gate: snapshot schema, tolerances, comparison."""

from __future__ import annotations

import json

import pytest

from repro.bench import gate


def _op_record(mean=0.01, bytes_=1000.0, crossings=2.0):
    return {
        "mean": mean, "p50": mean, "p95": mean * 1.2,
        "bytes": bytes_, "crossings": crossings,
        "samples": [mean] * 3,
    }


def _snapshot(**ops):
    return gate.make_snapshot(ops, rev="test", scale=1.0, repeats=3)


STRICT = {"tolerance_time": 0.5, "tolerance_deterministic": 0.0}


class TestCompare:
    def test_identical_runs_pass(self):
        snap = _snapshot(op=_op_record())
        assert gate.compare(snap, snap, STRICT) == []

    def test_injected_time_slowdown_fails(self):
        baseline = _snapshot(op=_op_record(mean=0.01))
        slowed = _snapshot(op=_op_record(mean=0.0151))  # +51% > 50% tol
        problems = gate.compare(baseline, slowed, STRICT)
        assert len(problems) == 1
        assert "mean time regressed" in problems[0]

    def test_slowdown_within_tolerance_passes(self):
        baseline = _snapshot(op=_op_record(mean=0.01))
        slower = _snapshot(op=_op_record(mean=0.0149))  # +49% < 50% tol
        assert gate.compare(baseline, slower, STRICT) == []

    def test_single_extra_crossing_fails(self):
        baseline = _snapshot(op=_op_record(crossings=2.0))
        regressed = _snapshot(op=_op_record(crossings=3.0))
        problems = gate.compare(baseline, regressed, STRICT)
        assert any("crossings regressed" in p for p in problems)

    def test_byte_growth_fails_at_zero_tolerance(self):
        baseline = _snapshot(op=_op_record(bytes_=1000.0))
        regressed = _snapshot(op=_op_record(bytes_=1001.0))
        problems = gate.compare(baseline, regressed, STRICT)
        assert any("bytes regressed" in p for p in problems)

    def test_deterministic_tolerance_allows_growth(self):
        baseline = _snapshot(op=_op_record(bytes_=1000.0))
        grown = _snapshot(op=_op_record(bytes_=1050.0))
        loose = dict(STRICT, tolerance_deterministic=0.10)
        assert gate.compare(baseline, grown, loose) == []

    def test_improvements_always_pass(self):
        baseline = _snapshot(op=_op_record(mean=0.01, bytes_=1000.0))
        improved = _snapshot(op=_op_record(mean=0.001, bytes_=100.0))
        assert gate.compare(baseline, improved, STRICT) == []

    def test_missing_op_is_a_regression(self):
        baseline = _snapshot(op=_op_record())
        problems = gate.compare(baseline, _snapshot(), STRICT)
        assert problems == ["op: missing from current run"]

    def test_new_op_is_allowed(self):
        baseline = _snapshot(op=_op_record())
        extended = _snapshot(op=_op_record(), shiny=_op_record())
        assert gate.compare(baseline, extended, STRICT) == []


class TestSnapshotFiles:
    def test_round_trip(self, tmp_path):
        snap = _snapshot(op=_op_record())
        path = tmp_path / "BENCH_test.json"
        gate.write_snapshot(snap, path)
        assert gate.load_snapshot(path) == snap

    def test_schema_version_enforced(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 99, "ops": {}}), "utf-8")
        with pytest.raises(ValueError, match="schema"):
            gate.load_snapshot(path)

    def test_committed_baseline_is_loadable(self):
        """The repo ships BENCH_baseline.json; the gate must accept it."""
        from pathlib import Path

        baseline = Path(gate.__file__).resolve().parents[3] \
            / "BENCH_baseline.json"
        snap = gate.load_snapshot(baseline)
        assert set(snap["ops"]) == set(gate.OPS)
        for record in snap["ops"].values():
            assert {"mean", "p50", "p95", "bytes", "crossings",
                    "samples"} <= set(record)


class TestTolerances:
    def test_defaults_from_pyproject(self):
        tolerances = gate.load_tolerances()
        assert tolerances["tolerance_time"] == 0.5
        assert tolerances["tolerance_deterministic"] == 0.0

    def test_custom_pyproject(self, tmp_path):
        path = tmp_path / "pyproject.toml"
        path.write_text(
            "[tool.other]\nx = 1\n"
            "[tool.repro.bench]\n"
            "tolerance_time = 0.25\n"
            "tolerance_deterministic = 0.05\n",
            "utf-8",
        )
        tolerances = gate.load_tolerances(path)
        assert tolerances == {"tolerance_time": 0.25,
                              "tolerance_deterministic": 0.05}

    def test_missing_file_uses_defaults(self, tmp_path):
        tolerances = gate.load_tolerances(tmp_path / "nope.toml")
        assert tolerances == gate.DEFAULT_TOLERANCES

    def test_fallback_parser_matches_tomllib(self):
        text = (
            "[project]\nname = \"x\"\n"
            "[tool.repro.bench]\n"
            "# a comment\n"
            "tolerance_time = 1.5\n"
            "tolerance_deterministic = 0\n"
            "[tool.ruff]\nline-length = 100\n"
        )
        parsed = gate._parse_toml_floats(text, "tool.repro.bench")
        assert parsed == {"tolerance_time": 1.5,
                          "tolerance_deterministic": 0.0}


class TestMain:
    @pytest.fixture
    def fast_ops(self, monkeypatch):
        """Swap the real benchmark ops for instant fakes."""
        monkeypatch.setattr(
            gate, "OPS", {"fake.op": lambda scale: (0.001, 64.0, 1.0)}
        )

    def test_record_only(self, fast_ops, tmp_path, capsys):
        out = tmp_path / "BENCH_now.json"
        assert gate.main(["--out", str(out), "--rev", "now",
                          "--repeats", "2"]) == 0
        snap = gate.load_snapshot(out)
        assert snap["rev"] == "now"
        assert snap["ops"]["fake.op"]["crossings"] == 1.0
        assert len(snap["ops"]["fake.op"]["samples"]) == 2

    def test_gate_passes_against_equal_baseline(self, fast_ops, tmp_path):
        baseline = tmp_path / "BENCH_base.json"
        out = tmp_path / "BENCH_head.json"
        assert gate.main(["--out", str(baseline)]) == 0
        assert gate.main(["--out", str(out),
                          "--baseline", str(baseline)]) == 0

    def test_gate_fails_on_injected_slowdown(self, fast_ops, tmp_path,
                                             capsys):
        """Acceptance: the gate exits non-zero when the current run is
        slower than the committed baseline beyond tolerance."""
        baseline_path = tmp_path / "BENCH_base.json"
        assert gate.main(["--out", str(baseline_path)]) == 0
        # Inject the slowdown into the baseline (10x faster than any
        # machine can run the fake op) so the comparison must fail.
        baseline = gate.load_snapshot(baseline_path)
        for record in baseline["ops"].values():
            record["mean"] /= 10.0
        gate.write_snapshot(baseline, baseline_path)
        out = tmp_path / "BENCH_head.json"
        code = gate.main(["--out", str(out),
                          "--baseline", str(baseline_path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_gate_fails_on_extra_crossing(self, tmp_path, monkeypatch):
        baseline_path = tmp_path / "BENCH_base.json"
        monkeypatch.setattr(
            gate, "OPS", {"fake.op": lambda scale: (0.001, 64.0, 1.0)}
        )
        assert gate.main(["--out", str(baseline_path)]) == 0
        monkeypatch.setattr(
            gate, "OPS", {"fake.op": lambda scale: (0.001, 64.0, 2.0)}
        )
        code = gate.main(["--out", str(tmp_path / "BENCH_head.json"),
                          "--baseline", str(baseline_path)])
        assert code == 1

    def test_scale_ops_gate_on_injected_slowdown(self, tmp_path,
                                                 monkeypatch, capsys):
        """Acceptance: the ``scale.*`` op family is gated like the
        others — a slowdown in the real scale-suite ops beyond
        tolerance exits non-zero."""
        real_churn = gate.OPS["scale.churn"]
        real_sync = gate.OPS["scale.sync"]
        monkeypatch.setattr(gate, "OPS", {
            "scale.churn": lambda s: real_churn(0.1),
            "scale.sync": lambda s: real_sync(0.1),
        })
        baseline_path = tmp_path / "BENCH_base.json"
        assert gate.main(["--out", str(baseline_path),
                          "--repeats", "1"]) == 0
        baseline = gate.load_snapshot(baseline_path)
        for record in baseline["ops"].values():
            record["mean"] /= 10.0      # head run is now a >50% slowdown
        gate.write_snapshot(baseline, baseline_path)
        code = gate.main(["--out", str(tmp_path / "BENCH_head.json"),
                          "--baseline", str(baseline_path),
                          "--repeats", "1"])
        assert code == 1
        err = capsys.readouterr().err
        assert "scale.churn" in err and "REGRESSION" in err

    def test_tolerance_time_override(self, tmp_path, monkeypatch):
        baseline_path = tmp_path / "BENCH_base.json"
        monkeypatch.setattr(
            gate, "OPS", {"fake.op": lambda scale: (0.001, 64.0, 1.0)}
        )
        assert gate.main(["--out", str(baseline_path)]) == 0
        baseline = gate.load_snapshot(baseline_path)
        for record in baseline["ops"].values():
            record["mean"] /= 10.0
        gate.write_snapshot(baseline, baseline_path)
        # A huge explicit tolerance lets the same slowdown through.
        assert gate.main(["--out", str(tmp_path / "BENCH_head.json"),
                          "--baseline", str(baseline_path),
                          "--tolerance-time", "100"]) == 0


class TestRealOps:
    def test_one_real_run_records_deterministic_dims(self):
        """A tiny real run: every op yields time + the deterministic
        dimensions, and a second run reproduces bytes/crossings exactly
        (the property the zero-tolerance gate depends on)."""
        first = gate.run_ops(scale=0.25, repeats=1)
        second = gate.run_ops(scale=0.25, repeats=1)
        assert set(first) == set(gate.OPS)
        for name, record in first.items():
            assert record["mean"] > 0
            assert record["bytes"] == second[name]["bytes"], name
            assert record["crossings"] == second[name]["crossings"], name
