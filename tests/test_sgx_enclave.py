"""Enclave boundary tests: ecall dispatch, leak scanning, lifecycle."""

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import EnclaveError
from repro.sgx.device import SgxDevice
from repro.sgx.enclave import Enclave, ecall


class ToyEnclave(Enclave):
    VERSION = "toy-1"

    def on_load(self):
        self.secret = self.track_secret(b"SUPER-SECRET-VALUE-0123456789ab")

    @ecall
    def add(self, a, b):
        return a + b

    @ecall
    def leaky(self):
        return {"oops": [b"prefix" + self.secret]}

    @ecall
    def sealed_secret(self):
        return self.seal_data(self.secret)

    @ecall
    def uses_ocall(self):
        return self.ocall("persist", b"payload")

    def hidden(self):
        return self.secret


@pytest.fixture()
def device():
    return SgxDevice(rng=DeterministicRng("enclave-tests"))


@pytest.fixture()
def enclave(device):
    return ToyEnclave.load(device)


class TestBoundary:
    def test_ecall_dispatch(self, enclave):
        assert enclave.call("add", 2, 3) == 5
        assert enclave.ecall_count == 1

    def test_non_ecall_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("hidden")

    def test_unknown_ecall_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("nope")

    def test_internal_helpers_not_callable(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("seal_data", b"x")

    def test_leak_scanner_blocks_secret(self, enclave):
        with pytest.raises(EnclaveError, match="leak"):
            enclave.call("leaky")

    def test_sealed_output_allowed(self, enclave):
        blob = enclave.call("sealed_secret")
        assert enclave.secret not in blob
        assert enclave.unseal_data(blob) == enclave.secret

    def test_destroyed_enclave_rejects_calls(self, enclave):
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.call("add", 1, 2)


class TestMeasurement:
    def test_stable_for_same_class(self, device):
        a = ToyEnclave.load(device)
        b = ToyEnclave.load(device)
        assert a.measurement == b.measurement

    def test_differs_per_class(self, device):
        class OtherEnclave(ToyEnclave):
            VERSION = "toy-1"

        assert (ToyEnclave.load(device).measurement
                != OtherEnclave.load(device).measurement)

    def test_differs_per_version(self, device):
        class V2(ToyEnclave):
            VERSION = "toy-2"

        assert ToyEnclave.load(device).measurement != V2.load(device).measurement

    def test_differs_per_config(self, device):
        a = ToyEnclave.load(device, {"x": 1})
        b = ToyEnclave.load(device, {"x": 2})
        assert a.measurement != b.measurement


class TestOcalls:
    def test_registered_handler_invoked(self, enclave):
        calls = []
        enclave.register_ocall("persist", lambda data: calls.append(data) or "ok")
        assert enclave.call("uses_ocall") == "ok"
        assert calls == [b"payload"]
        assert enclave.ocall_count == 1

    def test_missing_handler_raises(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("uses_ocall")


class TestSealingIntegration:
    def test_cross_enclave_sealing_isolated(self, device):
        class OtherSealEnclave(ToyEnclave):
            VERSION = "other"

        a = ToyEnclave.load(device)
        b = OtherSealEnclave.load(device)
        blob = a.seal_data(b"private")
        from repro.errors import SealingError
        with pytest.raises(SealingError):
            b.unseal_data(blob)

    def test_cross_device_sealing_isolated(self):
        d1 = SgxDevice(rng=DeterministicRng("d1"))
        d2 = SgxDevice(rng=DeterministicRng("d2"))
        a = ToyEnclave.load(d1)
        b = ToyEnclave.load(d2)
        assert a.measurement == b.measurement  # same code
        blob = a.seal_data(b"private")
        from repro.errors import SealingError
        with pytest.raises(SealingError):
            b.unseal_data(blob)


class TestEpcIntegration:
    def test_enclave_allocations_tracked_and_freed(self, device, enclave):
        handle = enclave.epc_allocate(10_000)
        enclave.epc_touch(handle, 5_000)
        assert device.epc.stats.allocated_bytes >= 10_000
        enclave.destroy()
        assert device.epc.stats.allocated_bytes == 0

    def test_secret_window_capped(self, enclave):
        for i in range(100):
            enclave.track_secret(f"secret-{i}".encode() * 4)
        assert len(enclave._secret_values) <= Enclave.MAX_TRACKED_SECRETS
