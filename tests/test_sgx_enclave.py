"""Enclave boundary tests: typed dispatch, batching, leak scanning,
isolation enforcement, lifecycle."""

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import EnclaveError
from repro.sgx.device import SgxDevice
from repro.sgx.enclave import (
    ECALL_CROSSING_CYCLES,
    Enclave,
    EnclaveHandle,
    ResultRef,
    ecall,
    trusted_view,
)


class ToyEnclave(Enclave):
    VERSION = "toy-1"

    def on_load(self):
        self.secret = self.track_secret(b"SUPER-SECRET-VALUE-0123456789ab")

    @ecall
    def add(self, a, b):
        return a + b

    @ecall(batchable=True)
    def double(self, x):
        return 2 * x

    @ecall(batchable=True)
    def box(self, x):
        return {"value": x}

    @ecall(batchable=True)
    def leaky_batchable(self):
        return b"prefix" + self.secret

    @ecall
    def leaky(self):
        return {"oops": [b"prefix" + self.secret]}

    @ecall
    def sealed_secret(self):
        return self.seal_data(self.secret)

    @ecall
    def uses_ocall(self):
        return self.ocall("persist", b"payload")

    def hidden(self):
        return self.secret


@pytest.fixture()
def device():
    return SgxDevice(rng=DeterministicRng("enclave-tests"))


@pytest.fixture()
def enclave(device):
    return ToyEnclave.load(device)


class TestBoundary:
    def test_ecall_dispatch(self, enclave):
        assert enclave.call("add", 2, 3) == 5
        assert enclave.ecall_count == 1

    def test_non_ecall_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("hidden")

    def test_unknown_ecall_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("nope")

    def test_internal_helpers_not_callable(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("seal_data", b"x")

    def test_leak_scanner_blocks_secret(self, enclave):
        with pytest.raises(EnclaveError, match="leak"):
            enclave.call("leaky")

    def test_sealed_output_allowed(self, enclave):
        blob = enclave.call("sealed_secret")
        inner = trusted_view(enclave)
        assert inner.secret not in blob
        assert inner.unseal_data(blob) == inner.secret

    def test_destroyed_enclave_rejects_calls(self, enclave):
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.call("add", 1, 2)


class TestRegistry:
    def test_lists_every_ecall(self, enclave):
        names = enclave.registry.names()
        assert {"add", "double", "leaky", "sealed_secret"} <= set(names)
        assert "hidden" not in names
        assert "seal_data" not in names

    def test_batchable_flag_in_descriptor(self, enclave):
        assert enclave.registry.resolve("double").batchable
        assert not enclave.registry.resolve("add").batchable

    def test_registry_cached_per_class(self, device):
        a = trusted_view(ToyEnclave.load(device))
        b = trusted_view(ToyEnclave.load(device))
        assert a.registry is b.registry


class TestBatching:
    def test_batch_executes_in_order(self, enclave):
        results = enclave.call_batch([
            ("double", (3,)),
            ("double", (5,)),
            ("box", ("x",)),
        ])
        assert results == [6, 10, {"value": "x"}]

    def test_batch_counts_one_crossing(self, enclave):
        enclave.call_batch([("double", (i,)) for i in range(10)])
        assert enclave.meter.crossings == 1
        assert enclave.meter.ecalls == 10
        assert enclave.meter.batches == 1
        assert enclave.meter.estimated_cycles == ECALL_CROSSING_CYCLES

    def test_single_calls_count_per_call(self, enclave):
        for i in range(10):
            enclave.call("double", i)
        assert enclave.meter.crossings == 10
        assert enclave.meter.ecalls == 10

    def test_non_batchable_rejected_up_front(self, enclave):
        with pytest.raises(EnclaveError, match="not batchable"):
            enclave.call_batch([("double", (1,)), ("add", (1, 2))])
        # Validation happens before execution: nothing ran.
        assert enclave.meter.ecalls == 0

    def test_unknown_name_rejected_up_front(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call_batch([("double", (1,)), ("nope", ())])
        assert enclave.meter.ecalls == 0

    def test_empty_batch_is_free(self, enclave):
        assert enclave.call_batch([]) == []
        assert enclave.meter.crossings == 0

    def test_result_ref_chains_dependent_calls(self, enclave):
        results = enclave.call_batch([
            ("double", (3,)),
            ("double", (ResultRef(0),)),
            ("box", (ResultRef(1),)),
        ])
        assert results == [6, 12, {"value": 12}]

    def test_result_ref_forward_reference_rejected(self, enclave):
        with pytest.raises(EnclaveError, match="not executed yet"):
            enclave.call_batch([("double", (ResultRef(1),)),
                                ("double", (4,))])

    def test_leak_scanner_runs_per_call_inside_batch(self, enclave):
        with pytest.raises(EnclaveError, match="leak"):
            enclave.call_batch([("double", (1,)), ("leaky_batchable", ())])

    def test_kwargs_supported(self, enclave):
        assert enclave.call_batch([("double", (), {"x": 4})]) == [8]


class TestIsolation:
    """Satellite: `load` hands untrusted code a proxy, not the enclave."""

    def test_load_returns_handle(self, enclave):
        assert isinstance(enclave, EnclaveHandle)

    def test_secret_attributes_unreachable(self, enclave):
        for name in ("secret", "_secret_values", "seal_data", "unseal_data",
                     "track_secret", "epc_allocate", "rng", "ocall",
                     "_ocall_handlers", "hidden"):
            with pytest.raises(EnclaveError, match="boundary"):
                getattr(enclave, name)

    def test_enclave_memory_not_writable(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.secret = b"overwritten"
        with pytest.raises(EnclaveError):
            enclave.measurement = b"forged"

    def test_public_surface_reachable(self, enclave, device):
        assert enclave.measurement == trusted_view(enclave).measurement
        assert enclave.device is device
        assert enclave.ecall_count == 0
        assert enclave.meter.crossings == 0
        assert "add" in enclave.registry

    def test_trusted_view_unwraps(self, enclave):
        inner = trusted_view(enclave)
        assert isinstance(inner, ToyEnclave)
        assert trusted_view(inner) is inner
        with pytest.raises(EnclaveError):
            trusted_view(object())


class TestMeasurement:
    def test_stable_for_same_class(self, device):
        a = ToyEnclave.load(device)
        b = ToyEnclave.load(device)
        assert a.measurement == b.measurement

    def test_differs_per_class(self, device):
        class OtherEnclave(ToyEnclave):
            VERSION = "toy-1"

        assert (ToyEnclave.load(device).measurement
                != OtherEnclave.load(device).measurement)

    def test_differs_per_version(self, device):
        class V2(ToyEnclave):
            VERSION = "toy-2"

        assert ToyEnclave.load(device).measurement != V2.load(device).measurement

    def test_differs_per_config(self, device):
        a = ToyEnclave.load(device, {"x": 1})
        b = ToyEnclave.load(device, {"x": 2})
        assert a.measurement != b.measurement


class TestOcalls:
    def test_registered_handler_invoked(self, enclave):
        calls = []
        enclave.register_ocall("persist", lambda data: calls.append(data) or "ok")
        assert enclave.call("uses_ocall") == "ok"
        assert calls == [b"payload"]
        assert enclave.ocall_count == 1

    def test_missing_handler_raises(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.call("uses_ocall")


class TestSealingIntegration:
    def test_cross_enclave_sealing_isolated(self, device):
        class OtherSealEnclave(ToyEnclave):
            VERSION = "other"

        a = trusted_view(ToyEnclave.load(device))
        b = trusted_view(OtherSealEnclave.load(device))
        blob = a.seal_data(b"private")
        from repro.errors import SealingError
        with pytest.raises(SealingError):
            b.unseal_data(blob)

    def test_cross_device_sealing_isolated(self):
        d1 = SgxDevice(rng=DeterministicRng("d1"))
        d2 = SgxDevice(rng=DeterministicRng("d2"))
        a = trusted_view(ToyEnclave.load(d1))
        b = trusted_view(ToyEnclave.load(d2))
        assert a.measurement == b.measurement  # same code
        blob = a.seal_data(b"private")
        from repro.errors import SealingError
        with pytest.raises(SealingError):
            b.unseal_data(blob)


class TestEpcIntegration:
    def test_enclave_allocations_tracked_and_freed(self, device, enclave):
        inner = trusted_view(enclave)
        handle = inner.epc_allocate(10_000)
        inner.epc_touch(handle, 5_000)
        assert device.epc.stats.allocated_bytes >= 10_000
        enclave.destroy()
        assert device.epc.stats.allocated_bytes == 0

    def test_secret_window_capped(self, enclave):
        inner = trusted_view(enclave)
        for i in range(100):
            inner.track_secret(f"secret-{i}".encode() * 4)
        assert len(inner._secret_values) <= Enclave.MAX_TRACKED_SECRETS
