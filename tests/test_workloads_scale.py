"""Scale-suite tests: generator invariants, determinism, reporting.

The full acceptance runs (10^5 users) live in the nightly workflow; the
tests here drive the same code at a few hundred users so the PR path
stays fast while still covering every phase, the fault profile, the
worker path, and the calibration mode.
"""

import json

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import Histogram
from repro.workloads.scale import (
    OP_JOIN,
    OP_LEAVE,
    ScaleConfig,
    generate_churn,
    plan_groups,
    run_calibration,
    run_scale,
    zipf_group_sizes,
)


# ---------------------------------------------------------------------------
# The deterministic generator
# ---------------------------------------------------------------------------

class TestZipfGroups:
    def test_sizes_partition_the_population(self):
        sizes = zipf_group_sizes(10_000)
        assert sum(sizes) == 10_000
        assert all(s >= 3 for s in sizes)

    def test_rank_size_shape(self):
        sizes = zipf_group_sizes(10_000, exponent=1.1,
                                 max_group_fraction=0.2)
        assert sizes[0] == 2_000                    # head = users × 0.2
        # Zipf head + long tail: a few big groups, a large population
        # of small ones (the last group may absorb a remainder).
        assert sorted(sizes[:-1], reverse=True) == sizes[:-1]
        median = sorted(sizes)[len(sizes) // 2]
        assert sizes[0] > 100 * median
        assert sizes.count(3) > 50

    def test_pure_function_of_inputs(self):
        assert zipf_group_sizes(5_000) == zipf_group_sizes(5_000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            zipf_group_sizes(2)
        with pytest.raises(ParameterError):
            zipf_group_sizes(100, exponent=0.0)

    def test_plan_assigns_disjoint_members_and_sqrt_capacity(self):
        groups = plan_groups(ScaleConfig(users=2_000, seed="x"))
        seen = set()
        for group in groups:
            members = group.initial_members()
            assert len(members) == group.size
            assert not seen.intersection(members)
            seen.update(members)
            assert group.capacity == max(
                2, min(512, round(group.size ** 0.5)))
        assert len(seen) == 2_000

    def test_fixed_capacity_rule(self):
        groups = plan_groups(ScaleConfig(users=500, seed="x",
                                         capacity_rule="fixed:7"))
        assert all(g.capacity == 7 for g in groups)
        with pytest.raises(ParameterError):
            plan_groups(ScaleConfig(users=500, capacity_rule="wat"))


class TestChurnTrace:
    def test_trace_is_valid_against_simulated_membership(self):
        config = ScaleConfig(users=1_000, seed="churn")
        groups = plan_groups(config)
        events = generate_churn(groups, 300, config)
        assert len(events) == 300
        members = {g.group_id: set(g.initial_members()) for g in groups}
        for event in events:
            roster = members[event.group_id]
            if event.kind == OP_JOIN:
                assert event.user not in roster
                roster.add(event.user)
            else:
                assert event.kind == OP_LEAVE
                assert event.user in roster
                roster.remove(event.user)
                assert len(roster) >= config.min_group_size

    def test_trace_deterministic_and_mixed(self):
        config = ScaleConfig(users=1_000, seed="churn")
        groups = plan_groups(config)
        a = generate_churn(groups, 300, config)
        b = generate_churn(groups, 300, config)
        assert a == b
        kinds = {e.kind for e in a}
        assert kinds == {OP_JOIN, OP_LEAVE}
        assert any(e.decrypts > 0 for e in a)

    def test_revocation_mix_shifts_leave_share(self):
        config_low = ScaleConfig(users=1_000, seed="m",
                                 revocation_mix=0.1)
        config_high = ScaleConfig(users=1_000, seed="m",
                                  revocation_mix=0.6)
        groups = plan_groups(config_low)
        low = sum(e.kind == OP_LEAVE
                  for e in generate_churn(groups, 400, config_low))
        high = sum(e.kind == OP_LEAVE
                   for e in generate_churn(groups, 400, config_high))
        assert high > low

    def test_duration_bounds_ops_deterministically(self):
        config = ScaleConfig(users=50_000, duration=10.0)
        bounded = config.effective_churn_ops()
        assert bounded == config.effective_churn_ops()   # no wall clock
        assert bounded < ScaleConfig(users=50_000).effective_churn_ops()


# ---------------------------------------------------------------------------
# Histogram.merge (the fleet-wide latency fold the report relies on)
# ---------------------------------------------------------------------------

class TestHistogramMerge:
    def test_merge_exact_aggregates(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (10.0, 0.5):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(16.5)
        assert a.min == 0.5 and a.max == 10.0
        assert sorted(a.samples()) == [0.5, 1.0, 2.0, 3.0, 10.0]

    def test_merge_empty_is_noop(self):
        a = Histogram("a")
        a.observe(1.0)
        a.merge(Histogram("b"))
        assert a.count == 1 and a.total == 1.0

    def test_merge_counts_evicted_observations(self):
        a = Histogram("a", reservoir_size=4)
        b = Histogram("b", reservoir_size=4)
        for i in range(100):
            b.observe(float(i))
        a.merge(b)
        assert a.count == 100                # not just the 4 samples
        assert a.max == 99.0


# ---------------------------------------------------------------------------
# The runner end to end (small populations)
# ---------------------------------------------------------------------------

SMALL = dict(users=600, seed="suite", sync_clients=6, churn_ops=60,
             contention_rounds=1, sync_rounds=2, resync_churn=4)


@pytest.fixture(scope="module")
def baseline_report():
    return run_scale(**SMALL)


class TestRunScale:
    def test_converges_and_reports(self, baseline_report):
        report = baseline_report
        assert report.converged
        assert report.revocation_failures == 0
        assert report.groups == len(plan_groups(ScaleConfig(users=600)))
        assert report.churn_ops == 60
        assert report.phases["churn"]["ops"] == 60
        assert report.phases["sync"]["ops"] > 0
        assert report.latency["churn_op"]["count"] == 60
        assert report.latency["client_decrypt"]["count"] > 0
        assert report.occ_conflicts >= 1        # the stale-view races
        assert len(report.convergence_digest) == 64
        json.dumps(report.summary())            # JSON-serialisable

    def test_rerun_is_byte_identical(self, baseline_report):
        again = run_scale(**SMALL)
        assert again.convergence_digest == \
            baseline_report.convergence_digest
        assert again.membership_digest == baseline_report.membership_digest
        assert again.key_hashes == baseline_report.key_hashes

    def test_faults_do_not_change_the_digest(self, baseline_report):
        faulted = run_scale(faults=True, **SMALL)
        assert faulted.faults_injected > 0
        assert faulted.convergence_digest == \
            baseline_report.convergence_digest

    def test_workers_do_not_change_the_digest(self, baseline_report):
        parallel = run_scale(workers=2, **SMALL)
        assert parallel.convergence_digest == \
            baseline_report.convergence_digest

    def test_different_seed_changes_the_digest(self, baseline_report):
        other = run_scale(**{**SMALL, "seed": "other"})
        assert other.convergence_digest != \
            baseline_report.convergence_digest

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(ParameterError):
            run_scale(ScaleConfig(users=100), users=200)


class TestCalibration:
    def test_calibration_emits_coefficients_and_curve(self):
        report = run_calibration(seed="cal", rekey_sizes=(64, 128),
                                 rekey_capacity=8, repeats=1,
                                 decrypt_sizes=(4, 8, 16),
                                 curve_sizes=(10_000, 100_000))
        summary = report.summary()
        assert summary["c_rekey"] > 0
        assert summary["c_decrypt"] > 0
        assert [p["n"] for p in summary["cutoff_curve"]] == \
            [10_000, 100_000]
        for point in summary["cutoff_curve"]:
            assert point["sqrt_n"] == round(point["n"] ** 0.5)
            assert point["optimal_m"] >= 1
        assert summary["span_breakdown"]        # attribution present
        json.dumps(summary)


class TestCli:
    def test_main_runs_and_writes_json(self, tmp_path, capsys):
        from repro.workloads.scale import main

        out = tmp_path / "report.json"
        code = main(["--users", "4e2", "--seed", "cli", "--churn-ops",
                     "24", "--sync-clients", "4",
                     "--json-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["converged"] is True
        assert "convergence digest:" in capsys.readouterr().out
