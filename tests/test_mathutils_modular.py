"""Unit and property tests for modular arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathError
from repro.mathutils.modular import crt_pair, jacobi_symbol, modinv, modsqrt

PRIMES = [3, 5, 7, 11, 101, 65537, (1 << 127) - 1]


class TestModinv:
    def test_basic(self):
        assert modinv(3, 7) == 5
        assert (3 * modinv(3, 7)) % 7 == 1

    def test_identity(self):
        assert modinv(1, 97) == 1

    def test_negative_input_normalized(self):
        assert (modinv(-3, 7) * (-3)) % 7 == 1

    def test_non_invertible_raises(self):
        with pytest.raises(MathError):
            modinv(6, 9)

    def test_zero_raises(self):
        with pytest.raises(MathError):
            modinv(0, 13)

    def test_bad_modulus_raises(self):
        with pytest.raises(MathError):
            modinv(1, 0)

    @given(st.integers(min_value=1, max_value=10**9),
           st.sampled_from(PRIMES))
    @settings(max_examples=50)
    def test_inverse_property(self, a, p):
        if a % p == 0:
            return
        assert (a * modinv(a, p)) % p == 1


class TestCrt:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    @given(st.integers(min_value=0, max_value=10**6),
           st.sampled_from([(7, 11), (13, 17), (101, 103)]))
    @settings(max_examples=30)
    def test_roundtrip(self, x, moduli):
        m1, m2 = moduli
        x %= m1 * m2
        assert crt_pair(x % m1, m1, x % m2, m2) == x

    def test_non_coprime_raises(self):
        with pytest.raises(MathError):
            crt_pair(1, 6, 2, 9)


class TestJacobi:
    def test_known_values(self):
        # (2/7) = 1, (3/7) = -1, (0/7) handled as 0
        assert jacobi_symbol(2, 7) == 1
        assert jacobi_symbol(3, 7) == -1
        assert jacobi_symbol(0, 7) == 0

    def test_even_modulus_raises(self):
        with pytest.raises(MathError):
            jacobi_symbol(3, 8)

    @given(st.integers(min_value=1, max_value=10**6),
           st.sampled_from(PRIMES))
    @settings(max_examples=50)
    def test_matches_euler_criterion(self, a, p):
        if a % p == 0:
            return
        euler = pow(a, (p - 1) // 2, p)
        expected = 1 if euler == 1 else -1
        assert jacobi_symbol(a, p) == expected


class TestModsqrt:
    @given(st.integers(min_value=1, max_value=10**9),
           st.sampled_from(PRIMES))
    @settings(max_examples=50)
    def test_square_roundtrip(self, x, p):
        square = (x * x) % p
        root = modsqrt(square, p)
        assert (root * root) % p == square

    def test_zero(self):
        assert modsqrt(0, 7) == 0

    def test_non_residue_raises(self):
        with pytest.raises(MathError):
            modsqrt(3, 7)

    def test_p_equal_1_mod_4(self):
        # 13 ≡ 1 (mod 4) exercises the full Tonelli-Shanks path.
        root = modsqrt(10, 13)
        assert (root * root) % 13 == 10

    def test_large_prime_3_mod_4(self):
        p = (1 << 127) - 1  # Mersenne, ≡ 3 mod 4
        root = modsqrt(4, p)
        assert (root * root) % p == 4
