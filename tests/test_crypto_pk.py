"""RSA-OAEP, ECDSA and ECIES tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ecdsa, ecies, rsa
from repro.crypto.rng import DeterministicRng
from repro.errors import AuthenticationError, CryptoError


@pytest.fixture(scope="module")
def rsa_key():
    return rsa.generate_keypair(1024, DeterministicRng("rsa-fixture"))


@pytest.fixture(scope="module")
def ecdsa_key():
    return ecdsa.generate_keypair(DeterministicRng("ecdsa-fixture"))


@pytest.fixture(scope="module")
def ecies_key():
    return ecies.generate_keypair(DeterministicRng("ecies-fixture"))


class TestRsa:
    def test_roundtrip(self, rsa_key, rng):
        message = b"the 32-byte group key material!!"
        ct = rsa_key.public_key().encrypt(message, rng)
        assert rsa_key.decrypt(ct) == message

    def test_ciphertext_size_matches_modulus(self, rsa_key, rng):
        ct = rsa_key.public_key().encrypt(b"x", rng)
        assert len(ct) == rsa_key.public_key().size_bytes == 128

    def test_label_binding(self, rsa_key, rng):
        ct = rsa_key.public_key().encrypt(b"m", rng, label=b"ctx1")
        assert rsa_key.decrypt(ct, label=b"ctx1") == b"m"
        with pytest.raises(CryptoError):
            rsa_key.decrypt(ct, label=b"ctx2")

    def test_tamper_detected(self, rsa_key, rng):
        ct = bytearray(rsa_key.public_key().encrypt(b"m", rng))
        ct[64] ^= 0xFF
        with pytest.raises(CryptoError):
            rsa_key.decrypt(bytes(ct))

    def test_message_too_long(self, rsa_key, rng):
        with pytest.raises(CryptoError):
            rsa_key.public_key().encrypt(bytes(128 - 2 * 32 - 1), rng)

    def test_wrong_key_fails(self, rsa_key, rng):
        other = rsa.generate_keypair(1024, DeterministicRng("other"))
        ct = rsa_key.public_key().encrypt(b"m", rng)
        with pytest.raises(CryptoError):
            other.decrypt(ct)

    def test_small_modulus_refused(self, rng):
        with pytest.raises(CryptoError):
            rsa.generate_keypair(256, rng)

    def test_randomized_encryption(self, rsa_key, rng):
        a = rsa_key.public_key().encrypt(b"m", rng)
        b = rsa_key.public_key().encrypt(b"m", rng)
        assert a != b


class TestEcdsa:
    def test_sign_verify(self, ecdsa_key):
        sig = ecdsa_key.sign(b"membership op")
        ecdsa_key.public_key().verify(b"membership op", sig)

    def test_deterministic_signatures(self, ecdsa_key):
        assert ecdsa_key.sign(b"m") == ecdsa_key.sign(b"m")

    def test_message_tamper(self, ecdsa_key):
        sig = ecdsa_key.sign(b"m")
        with pytest.raises(AuthenticationError):
            ecdsa_key.public_key().verify(b"m2", sig)

    def test_signature_tamper(self, ecdsa_key):
        sig = bytearray(ecdsa_key.sign(b"m"))
        sig[10] ^= 1
        assert not ecdsa_key.public_key().is_valid(b"m", bytes(sig))

    def test_cross_key_rejected(self, ecdsa_key):
        other = ecdsa.generate_keypair(DeterministicRng("other-ecdsa"))
        sig = ecdsa_key.sign(b"m")
        assert not other.public_key().is_valid(b"m", sig)

    def test_malformed_signature(self, ecdsa_key):
        with pytest.raises(AuthenticationError):
            ecdsa_key.public_key().verify(b"m", b"short")
        with pytest.raises(AuthenticationError):
            ecdsa_key.public_key().verify(b"m", bytes(64))

    def test_public_key_roundtrip(self, ecdsa_key):
        encoded = ecdsa_key.public_key().encode()
        decoded = ecdsa.EcdsaPublicKey.decode(encoded)
        decoded.verify(b"m", ecdsa_key.sign(b"m"))

    @given(st.binary(max_size=64))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_messages(self, message):
        key = ecdsa.generate_keypair(DeterministicRng("hyp"))
        key.public_key().verify(message, key.sign(message))


class TestEcies:
    def test_roundtrip(self, ecies_key, rng):
        ct = ecies_key.public_key().encrypt(b"group key bytes", rng)
        assert ecies_key.decrypt(ct) == b"group key bytes"

    def test_aad_binding(self, ecies_key, rng):
        ct = ecies_key.public_key().encrypt(b"m", rng, aad=b"ctx")
        assert ecies_key.decrypt(ct, aad=b"ctx") == b"m"
        with pytest.raises(AuthenticationError):
            ecies_key.decrypt(ct, aad=b"other")

    def test_wrong_key(self, ecies_key, rng):
        other = ecies.generate_keypair(DeterministicRng("other-ecies"))
        ct = ecies_key.public_key().encrypt(b"m", rng)
        with pytest.raises(AuthenticationError):
            other.decrypt(ct)

    def test_tamper(self, ecies_key, rng):
        ct = bytearray(ecies_key.public_key().encrypt(b"m", rng))
        ct[-1] ^= 1
        with pytest.raises(AuthenticationError):
            ecies_key.decrypt(bytes(ct))

    def test_too_short(self, ecies_key):
        with pytest.raises(CryptoError):
            ecies_key.decrypt(bytes(10))

    def test_overhead_constant(self, ecies_key, rng):
        overhead = ecies.ciphertext_overhead()
        for size in (0, 1, 33, 100):
            ct = ecies_key.public_key().encrypt(bytes(size), rng)
            assert len(ct) == size + overhead

    def test_public_key_roundtrip(self, ecies_key, rng):
        decoded = ecies.EciesPublicKey.decode(
            ecies_key.public_key().encode()
        )
        assert ecies_key.decrypt(decoded.encrypt(b"m", rng)) == b"m"
