"""Tests for repro.shard: rendezvous placement, the group-routed RNG,
N-shard byte-equivalence with the single-enclave deployment (including
after kill + respawn), attestation gating, the shard fault kinds, and
the kill-any-shard chaos harness."""

import hashlib

import pytest

from repro.errors import (
    AttestationError,
    EnclaveError,
    TransientAttestationError,
    UnavailableError,
    ValidationError,
)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, install
from repro.shard import (
    CONTROL_SCOPE,
    GroupRoutedRng,
    ShardedSystem,
    ShardRing,
    rendezvous_score,
)
from repro.workloads.chaos import cloud_digest, run_shard_chaos

GROUPS = {
    "galois": ["galois.alice", "galois.bob", "galois.carol"],
    "noether": ["noether.dan", "noether.erin"],
    "abel": ["abel.frank", "abel.grace", "abel.heidi"],
}


def build(nshards, seed="shard-test"):
    return ShardedSystem(nshards=nshards, partition_capacity=4,
                         params="toy64", seed=seed)


def churn(system):
    """A fixed cross-group operation script, deliberately interleaved so
    per-group sequences cross shard boundaries between draws."""
    for gid in sorted(GROUPS):
        system.create_group(gid, GROUPS[gid])
    system.add_user("galois", "galois.dave")
    system.add_user("noether", "noether.frank")
    system.remove_user("galois", "galois.bob")
    system.rekey("noether")
    system.add_user("abel", "abel.ivan")
    system.remove_user("abel", "abel.frank")


def key_hashes(system):
    hashes = {}
    for gid in system.group_ids():
        member = sorted(system.group_state(gid).table.all_members())[0]
        client = system.make_client(gid, member)
        client.sync()
        hashes[gid] = hashlib.sha256(client.current_group_key()).hexdigest()
    return hashes


class TestShardRing:
    def test_owner_is_stable_and_in_range(self):
        ring = ShardRing([f"shard-{i}" for i in range(4)])
        owners = {gid: ring.owner(gid) for gid in
                  (f"group-{n}" for n in range(64))}
        assert all(0 <= o < 4 for o in owners.values())
        again = ShardRing([f"shard-{i}" for i in range(4)])
        assert owners == {gid: again.owner(gid) for gid in owners}

    def test_every_shard_owns_something(self):
        ring = ShardRing([f"shard-{i}" for i in range(4)])
        assignments = ring.assignments([f"group-{n}" for n in range(64)])
        assert len(assignments) == 4
        assert all(assignments)

    def test_membership_growth_only_moves_groups_to_the_new_shard(self):
        # The rendezvous property: adding a shard never reshuffles a
        # group between two pre-existing shards.
        small = ShardRing(["shard-0", "shard-1"])
        large = ShardRing(["shard-0", "shard-1", "shard-2"])
        for n in range(64):
            gid = f"group-{n}"
            if large.owner_id(gid) != "shard-2":
                assert large.owner_id(gid) == small.owner_id(gid)

    def test_scores_differ_by_shard(self):
        assert rendezvous_score("shard-0", "g") != \
            rendezvous_score("shard-1", "g")

    def test_invalid_memberships_rejected(self):
        with pytest.raises(ValidationError):
            ShardRing([])
        with pytest.raises(ValidationError):
            ShardRing(["shard-0", "shard-0"])


class TestGroupRoutedRng:
    def test_group_stream_independent_of_interleaving(self):
        a = GroupRoutedRng("seed")
        with a.scoped("group:g1"):
            first = a.random_bytes(8)
        with a.scoped("group:g2"):
            a.random_bytes(8)
        with a.scoped("group:g1"):
            second = a.random_bytes(8)

        b = GroupRoutedRng("seed")
        with b.scoped("group:g1"):
            assert b.random_bytes(8) == first
            assert b.random_bytes(8) == second

    def test_control_scope_is_default(self):
        rng = GroupRoutedRng("seed")
        assert rng.scope == CONTROL_SCOPE
        control = rng.random_bytes(8)
        other = GroupRoutedRng("seed")
        with other.scoped("group:g1"):
            pass
        assert other.random_bytes(8) == control

    def test_state_roundtrip(self):
        rng = GroupRoutedRng("seed")
        with rng.scoped("group:g1"):
            rng.random_bytes(8)
        state = rng.getstate()
        with rng.scoped("group:g1"):
            expected = rng.random_bytes(8)
        rng.setstate(state)
        with rng.scoped("group:g1"):
            assert rng.random_bytes(8) == expected


class TestShardedByteEquivalence:
    def test_shard_count_is_invisible_in_the_cloud(self):
        digests, hashes = set(), []
        for nshards in (1, 2, 4):
            system = build(nshards)
            try:
                churn(system)
                digests.add(cloud_digest(system.cloud))
                hashes.append(key_hashes(system))
            finally:
                system.close()
        assert len(digests) == 1
        assert hashes[0] == hashes[1] == hashes[2]

    def test_kill_and_respawn_converges_byte_identically(self):
        reference = build(1)
        try:
            churn(reference)
            expected = cloud_digest(reference.cloud)
            expected_keys = key_hashes(reference)
        finally:
            reference.close()

        system = build(3)
        try:
            for gid in sorted(GROUPS):
                system.create_group(gid, GROUPS[gid])
            # Kill every shard in turn mid-churn; routing lazily
            # respawns + re-attests the owner of the next routed op.
            system.kill_shard(0)
            system.add_user("galois", "galois.dave")
            system.add_user("noether", "noether.frank")
            system.kill_shard(1)
            system.remove_user("galois", "galois.bob")
            system.rekey("noether")
            system.kill_shard(2)
            system.add_user("abel", "abel.ivan")
            system.remove_user("abel", "abel.frank")
            for shard in system.shards:
                if not shard.alive:
                    system.respawn_shard(shard.index)
            assert cloud_digest(system.cloud) == expected
            assert key_hashes(system) == expected_keys
            assert sum(s.respawns for s in system.shards) >= 3
            assert system.health()["status"] == "ok"
        finally:
            system.close()


class TestFailover:
    def test_health_reflects_kill_and_respawn(self):
        system = build(2)
        try:
            system.create_group("galois", GROUPS["galois"])
            assert system.health()["status"] == "ok"
            victim = system.owner("galois")
            system.kill_shard(victim)
            report = system.health()
            assert report["status"] == "degraded"
            assert report["shards"][victim]["alive"] is False
            system.respawn_shard(victim)
            report = system.health()
            assert report["status"] == "ok"
            assert report["shards"][victim]["respawns"] == 1
        finally:
            system.close()

    def test_unattested_shard_refuses_to_serve(self):
        system = build(2)
        try:
            system.create_group("galois", GROUPS["galois"])
            system.shards[system.owner("galois")].attested = False
            with pytest.raises(EnclaveError):
                system.add_user("galois", "galois.dave")
        finally:
            system.close()

    def test_provisioning_retries_injected_attestation_faults(self):
        plan = FaultPlan(seed="attest", attest_fail_rate=1.0,
                         max_attest_fails=3)
        injector = FaultInjector(plan)
        install(injector)
        try:
            system = build(2, seed="attest-retry")
            try:
                assert all(s.attested for s in system.shards)
                assert injector.history()
                assert all(kind == "attest.fail"
                           for kind, _ in injector.history())
            finally:
                system.close()
        finally:
            install(None)


class TestShardFaultKinds:
    def test_take_shard_kill_caps_and_replays(self):
        plan = FaultPlan(seed="kills", shard_kill_rate=1.0,
                         max_shard_kills=2)
        injector = FaultInjector(plan)
        victims = [injector.take_shard_kill(4) for _ in range(10)]
        assert sum(v is not None for v in victims) == 2
        assert all(v in range(4) for v in victims if v is not None)
        again = [FaultInjector(plan).take_shard_kill(4) for _ in range(1)]
        assert again[0] == victims[0]

    def test_attestation_fault_raises_transient(self):
        plan = FaultPlan(seed="attest", attest_fail_rate=1.0,
                         max_attest_fails=1)
        injector = FaultInjector(plan)
        with pytest.raises(TransientAttestationError):
            injector.attestation_fault("peer-offer")
        injector.attestation_fault("peer-offer")  # capped: no raise
        assert ("attest.fail", "peer-offer") in injector.history()

    def test_disabled_plan_is_a_noop(self):
        injector = FaultInjector(FaultPlan.disabled())
        assert injector.take_shard_kill(4) is None
        injector.attestation_fault("peer-offer")
        assert injector.history() == []

    def test_transient_attestation_error_is_retryable(self):
        # The class sits under both AttestationError (handlers) and
        # UnavailableError (RetryPolicy's default retry_on).
        assert issubclass(TransientAttestationError, AttestationError)
        assert issubclass(TransientAttestationError, UnavailableError)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientAttestationError("handshake dropped")
            return "attested"

        policy = RetryPolicy(max_attempts=5, seed="retry")
        assert policy.run(flaky) == "attested"
        assert len(attempts) == 3


class TestShardChaosHarness:
    def test_small_kill_any_shard_run_converges(self):
        report = run_shard_chaos(nshards=2, groups=2, ops=6, pool=5,
                                 initial=3, capacity=4,
                                 seed="test-shard-chaos")
        assert report.converged, report.summary()
        assert report.scheduled_kills == 2
        assert report.respawns >= report.scheduled_kills
        assert report.final_health["status"] == "ok"
        assert report.reference_digest == report.chaos_digest
