"""The parallel execution engine (repro.par) and its wiring.

The engine's contract is that worker count changes wall-clock only:
groups, re-keys and removals must be byte-identical under any worker
count, per-task randomness streams must be independent, and a poisoned
pool must never be reused.  The wNAF fixed-base tables it leans on are
checked against naive scalar multiplication.
"""

from __future__ import annotations

import pytest

import repro
from repro.crypto.rng import DeterministicRng
from repro.ec import FixedBaseWnaf, wnaf_digits
from repro.errors import ParallelError
from repro.par import ENV_WORKERS, WorkerPool, derive_seed, resolve_workers
from repro.par.streams import task_rng


# ---------------------------------------------------------------------------
# resolve_workers / stream derivation
# ---------------------------------------------------------------------------

def test_resolve_workers_explicit_and_default(monkeypatch):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3


def test_resolve_workers_env_fallback(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "2")
    assert resolve_workers(None) == 2
    assert resolve_workers(5) == 5  # explicit wins over the environment


@pytest.mark.parametrize("bad", [0, -1, "two", 1.5, True])
def test_resolve_workers_rejects_invalid(monkeypatch, bad):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    with pytest.raises(ParallelError):
        resolve_workers(bad)


def test_resolve_workers_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(ENV_WORKERS, "lots")
    with pytest.raises(ParallelError):
        resolve_workers(None)


def test_derive_seed_independence():
    parent = b"p" * 32
    seeds = {derive_seed(parent, i) for i in range(64)}
    assert len(seeds) == 64                       # distinct per index
    assert derive_seed(parent, 0) == derive_seed(parent, 0)  # stable
    assert derive_seed(parent, 0) != derive_seed(parent, 0, "rekey")
    assert derive_seed(parent, 0) != derive_seed(b"q" * 32, 0)
    with pytest.raises(ValueError):
        derive_seed(parent, -1)


def test_task_rng_streams_are_independent():
    parent = b"p" * 32
    a = task_rng(parent, 0).random_bytes(64)
    b = task_rng(parent, 1).random_bytes(64)
    assert a != b
    # re-derivation replays the identical stream
    assert task_rng(parent, 0).random_bytes(64) == a


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


def _explode(x):
    raise RuntimeError(f"task {x} failed")


def test_pool_serial_and_parallel_agree():
    with WorkerPool(1) as serial, WorkerPool(2) as parallel:
        tasks = list(range(25))
        assert serial.run(_square, tasks) == parallel.run(_square, tasks)
        assert serial.run(_square, []) == []


def test_pool_shutdown_on_exception():
    pool = WorkerPool(2)
    try:
        assert pool.run(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.started
        with pytest.raises(RuntimeError):
            pool.run(_explode, [1])
        # the poisoned pool was torn down, and a fresh one works
        assert not pool.started
        assert pool.run(_square, [4]) == [16]
        snapshot = pool.registry.snapshot()
        assert snapshot["par.failures"] == 1
    finally:
        pool.close()


def test_pool_serial_failure_counts_without_pool():
    pool = WorkerPool(1)
    with pytest.raises(RuntimeError):
        pool.run(_explode, [1])
    assert pool.registry.snapshot()["par.failures"] == 1
    assert not pool.started


def test_pool_warm_starts_workers():
    with WorkerPool(2) as pool:
        assert pool.warm() == 2
        assert pool.started
    assert not pool.started


def test_pool_metrics():
    with WorkerPool(1) as pool:
        pool.run(_square, [1, 2, 3])
        pool.run(_square, [4])
        snapshot = pool.registry.snapshot()
        assert snapshot["par.tasks"] == 4
        assert snapshot["par.dispatches"] == 2
        assert snapshot["par.workers"] == 1


# ---------------------------------------------------------------------------
# Serial vs parallel byte-equivalence of group operations
# ---------------------------------------------------------------------------

def _build_system(workers):
    return repro.quickstart_system(
        partition_capacity=4, params="toy64",
        rng=DeterministicRng(b"par-equivalence"), workers=workers,
    )


def _cloud_bytes(system):
    return {obj.path: obj.data for obj in system.cloud.adversary_view()}


@pytest.fixture(scope="module")
def equivalence_runs():
    """The same operation sequence under serial and 2-worker engines."""
    systems = [_build_system(1), _build_system(2)]
    snapshots = []
    for system in systems:
        admin = system.admin
        admin.create_group("g", [f"user{i}" for i in range(10)])
        admin.rekey("g")
        admin.remove_user("g", "user3")
        admin.add_user("g", "late-joiner")
        admin.repartition("g")
        snapshots.append(_cloud_bytes(system))
    yield systems, snapshots
    for system in systems:
        system.close()


def test_group_operations_byte_identical(equivalence_runs):
    _, (serial, parallel) = equivalence_runs
    assert serial.keys() == parallel.keys()
    assert serial == parallel


def test_parallel_system_serves_clients(equivalence_runs):
    (serial_sys, parallel_sys), _ = equivalence_runs
    a = serial_sys.make_client("g", "user5")
    b = parallel_sys.make_client("g", "user5")
    a.sync(), b.sync()
    assert a.current_group_key() == b.current_group_key()


def test_parallel_engine_metrics(equivalence_runs):
    (_, parallel_sys), _ = equivalence_runs
    metrics = parallel_sys.telemetry()["metrics"]
    assert metrics["par.workers"] == 2
    assert metrics["par.tasks"] > 0
    assert metrics["par.failures"] == 0


def test_set_workers_runtime_switch():
    system = _build_system(1)
    try:
        assert system.workers == 1
        assert system.set_workers(2) == 2
        assert system.workers == 2
        system.admin.create_group("g", [f"u{i}" for i in range(6)])
        assert system.telemetry()["metrics"]["par.workers"] == 2
        with pytest.raises(ParallelError):
            system.set_workers(0)
    finally:
        system.close()


def test_client_prewarm_hints_parallel_equivalence():
    system = _build_system(1)
    try:
        admin = system.admin
        admin.create_group("g", [f"u{i}" for i in range(10)])
        state = admin.group_state("g")
        member_sets = [tuple(r.members) for r in state.records.values()]

        warmed = system.make_client("g", "u1")
        warmed.workers = 2
        added = warmed.prewarm_hints(member_sets)
        assert added == 1  # only u1's own partition qualifies
        assert warmed.prewarm_hints(member_sets) == 0  # idempotent

        cold = system.make_client("g", "u1")
        warmed.sync(), cold.sync()
        assert warmed.current_group_key() == cold.current_group_key()
        # the prewarmed client never ran an inline expansion
        assert warmed.expansion_count == 0
        assert cold.expansion_count == 1
        warmed.close()
    finally:
        system.close()


# ---------------------------------------------------------------------------
# Fixed-base wNAF correctness
# ---------------------------------------------------------------------------

def test_wnaf_digits_recoding():
    for k in [0, 1, 2, 3, 31, 32, 255, 2**64 - 1, 12345678901234567890]:
        digits = wnaf_digits(k)
        value = sum(d * (1 << i) for i, d in enumerate(digits))
        assert value == k, f"wNAF recoding of {k} does not sum back"
        assert all(d == 0 or d % 2 != 0 for d in digits)
        assert all(abs(d) < 16 for d in digits)


def test_fixed_base_wnaf_matches_naive(group):
    curve = group.curve
    base = group.g1
    table = FixedBaseWnaf(curve, base.point._jac(), bits=group.q.bit_length())
    for k in [0, 1, 2, 3, group.q - 1, group.q // 2, 0xDEADBEEF]:
        expected = base.point * k
        got = curve._to_affine(table.mul(k))
        assert got == expected, f"wNAF mul mismatch at k={k}"


def test_g1_precomputation_matches_ladder(group):
    g = group.g1
    h = g ** group.hash_to_scalar("base", domain=b"t")
    plain = [h ** k for k in [0, 1, 5, group.q - 1]]
    h.enable_precomputation()
    fast = [h ** k for k in [0, 1, 5, group.q - 1]]
    assert plain == fast


def test_gt_precomputation_matches_pow(group):
    gt = group.pair(group.g1, group.g1)
    plain = [gt ** k for k in [0, 1, 7, group.q - 1]]
    gt.enable_precomputation()
    fast = [gt ** k for k in [0, 1, 7, group.q - 1]]
    assert plain == fast


def test_precomputation_metrics(group):
    from repro.ec import precomp_registry
    before = precomp_registry.snapshot().get("ec.precomp.hits", 0)
    g = group.g1
    h = g ** 7
    h.enable_precomputation()
    _ = h ** 12345
    after = precomp_registry.snapshot()["ec.precomp.hits"]
    assert after > before
