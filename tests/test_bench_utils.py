"""Benchmark-harness utility tests (fitting, reporting, timing)."""

import pytest

from repro.bench import (
    Timer,
    cdf_points,
    extrapolate,
    fit_power_law,
    format_bytes,
    format_seconds,
    time_call,
)


class TestFitting:
    def test_exact_quadratic(self):
        points = [(n, 0.5 * n * n) for n in (10, 50, 200, 1000)]
        fit = fit_power_law(points)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(0.5, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_linear(self):
        points = [(n, 3.0 * n) for n in (1, 10, 100)]
        fit = fit_power_law(points)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_noisy_fit_reasonable(self):
        points = [(10, 105.0), (100, 9_800.0), (1000, 1_020_000.0)]
        fit = fit_power_law(points)
        assert 1.9 <= fit.exponent <= 2.1
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = fit_power_law([(10, 100.0), (100, 10_000.0)])
        assert fit.predict(1000) == pytest.approx(1_000_000.0, rel=1e-6)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([(10, 1.0)])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([(10, 0.0), (20, 1.0)])

    def test_degenerate_same_n(self):
        with pytest.raises(ValueError):
            fit_power_law([(10, 1.0), (10, 2.0)])

    def test_anchored_extrapolation(self):
        points = [(10, 200.0), (20, 800.0)]  # t = 2n²
        assert extrapolate(points, 100, exponent=2.0) == pytest.approx(
            20_000.0, rel=1e-6
        )

    def test_free_extrapolation(self):
        points = [(10, 100.0), (100, 10_000.0)]
        assert extrapolate(points, 50) == pytest.approx(2_500.0, rel=1e-6)

    def test_describe_format(self):
        fit = fit_power_law([(10, 100.0), (100, 10_000.0)])
        assert "n^" in fit.describe()


class TestReporting:
    def test_format_seconds_ranges(self):
        assert "µs" in format_seconds(5e-6)
        assert "ms" in format_seconds(0.005)
        assert format_seconds(2.5) == "2.50 s"
        assert "min" in format_seconds(600)
        assert "h" in format_seconds(10_000)

    def test_format_bytes_ranges(self):
        assert format_bytes(100) == "100 B"
        assert format_bytes(2048) == "2.0 KB"
        assert "MB" in format_bytes(5 * 1024 * 1024)
        assert "GB" in format_bytes(3 * 1024 ** 3)

    def test_cdf_points(self):
        samples = list(range(1, 101))
        points = cdf_points(samples, steps=4)
        assert points[-1] == (100, 1.0)
        assert points[0][1] == 0.25
        assert points[0][0] == 25

    def test_cdf_empty(self):
        assert cdf_points([]) == []


class TestTiming:
    def test_time_call(self):
        result, elapsed = time_call(sum, range(1000))
        assert result == 499500
        assert elapsed >= 0

    def test_timer_context(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.seconds > 0
