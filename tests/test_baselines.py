"""Baseline scheme tests: HE-PKI, HE-IBE, raw IBBE."""

import pytest

from repro import ibbe
from repro.baselines import (
    HeIbeScheme,
    HePkiScheme,
    HybridGroupManager,
    RawIbbeGroupManager,
)
from repro.cloud import CloudStore
from repro.crypto.rng import DeterministicRng
from repro.errors import (
    AccessControlError,
    MembershipError,
    RevokedError,
)

USERS = [f"u{i}" for i in range(6)]


def pki_manager(seed="pki", cloud=None):
    scheme = HePkiScheme(rng=DeterministicRng(f"{seed}-keys"))
    for user in USERS + ["extra", "late"]:
        scheme.register_user(user)
    return HybridGroupManager(scheme, cloud=cloud,
                              rng=DeterministicRng(seed))


class TestHePki:
    def test_create_and_derive(self):
        mgr = pki_manager()
        state = mgr.create_group("g", USERS)
        for user in USERS:
            assert mgr.derive_group_key("g", user) == state.group_key

    def test_add_keeps_gk(self):
        mgr = pki_manager()
        state = mgr.create_group("g", USERS)
        gk = state.group_key
        mgr.add_user("g", "extra")
        assert mgr.derive_group_key("g", "extra") == gk
        assert mgr.derive_group_key("g", "u0") == gk

    def test_remove_rekeys(self):
        mgr = pki_manager()
        gk_before = mgr.create_group("g", USERS).group_key
        mgr.remove_user("g", "u3")
        gk_after = mgr.derive_group_key("g", "u0")
        assert gk_after != gk_before
        with pytest.raises(RevokedError):
            mgr.derive_group_key("g", "u3")

    def test_membership_errors(self):
        mgr = pki_manager()
        mgr.create_group("g", USERS)
        with pytest.raises(MembershipError):
            mgr.add_user("g", "u0")
        with pytest.raises(MembershipError):
            mgr.remove_user("g", "stranger")
        with pytest.raises(AccessControlError):
            mgr.add_user("ghost", "x")
        with pytest.raises(AccessControlError):
            mgr.create_group("g", ["x"])

    def test_duplicate_members_rejected(self):
        mgr = pki_manager()
        with pytest.raises(MembershipError):
            mgr.create_group("g", ["u0", "u0"])

    def test_unregistered_user_rejected(self):
        mgr = pki_manager()
        with pytest.raises(MembershipError):
            mgr.create_group("g", ["nokey"])

    def test_footprint_linear(self):
        mgr = pki_manager()
        mgr.create_group("g", USERS[:2])
        small = mgr.crypto_footprint("g")
        mgr2 = pki_manager("pki2")
        mgr2.create_group("g", USERS)
        assert mgr2.crypto_footprint("g") == small * len(USERS) // 2

    def test_cloud_push(self):
        cloud = CloudStore()
        mgr = pki_manager(cloud=cloud)
        mgr.create_group("g", USERS)
        assert cloud.exists("/g/he-metadata")
        from repro.baselines.hybrid import HybridGroupState
        decoded = HybridGroupState.decode(cloud.get("/g/he-metadata").data)
        assert set(decoded.wrapped_keys) == set(USERS)

    def test_manager_sees_gk(self):
        """The documented HE weakness: no zero knowledge for the admin."""
        mgr = pki_manager()
        state = mgr.create_group("g", USERS)
        assert state.group_key  # plaintext gk held by the manager


class TestHeIbe:
    @pytest.fixture()
    def manager(self, group):
        scheme = HeIbeScheme(group, rng=DeterministicRng("ibe-keys"))
        for user in USERS:
            scheme.register_user(user)
        return HybridGroupManager(scheme, rng=DeterministicRng("ibe-mgr"))

    def test_semantics_match_pki(self, manager):
        state = manager.create_group("g", USERS)
        gk_before = bytes(state.group_key)
        assert manager.derive_group_key("g", "u1") == gk_before
        manager.remove_user("g", "u1")
        with pytest.raises(RevokedError):
            manager.derive_group_key("g", "u1")
        assert manager.derive_group_key("g", "u0") != gk_before

    def test_encrypt_without_registration(self, group):
        """The IBE selling point: no PKI lookup before encrypting."""
        scheme = HeIbeScheme(group, rng=DeterministicRng("ibe2"))
        ct = scheme.encrypt_for("unregistered", b"data")
        scheme.register_user("unregistered")
        assert scheme.decrypt_as("unregistered", ct) == b"data"


class TestRawIbbe:
    @pytest.fixture()
    def setup(self, ibbe_system, user_keys):
        msk, pk = ibbe_system
        mgr = RawIbbeGroupManager(pk, rng=DeterministicRng("raw"))
        return msk, pk, mgr

    def test_create_and_derive(self, setup, user_keys):
        msk, pk, mgr = setup
        members = [f"user{i}" for i in range(4)]
        mgr.create_group("g", members)
        gk = mgr.derive_group_key("g", "user0", user_keys["user0"])
        assert gk == mgr.derive_group_key("g", "user3", user_keys["user3"])

    def test_footprint_constant(self, setup):
        msk, pk, mgr = setup
        mgr.create_group("small", ["user0"])
        mgr.create_group("large", [f"user{i}" for i in range(8)])
        assert mgr.crypto_footprint("small") == mgr.crypto_footprint("large")

    def test_add_rekeys_metadata(self, setup, user_keys):
        msk, pk, mgr = setup
        mgr.create_group("g", ["user0", "user1"])
        mgr.add_user("g", "newcomer")
        gk = mgr.derive_group_key("g", "newcomer", user_keys["newcomer"])
        assert gk == mgr.derive_group_key("g", "user0", user_keys["user0"])

    def test_remove_excludes(self, setup, user_keys):
        msk, pk, mgr = setup
        mgr.create_group("g", ["user0", "user1", "user2"])
        mgr.remove_user("g", "user1")
        with pytest.raises(RevokedError):
            mgr.derive_group_key("g", "user1", user_keys["user1"])
        mgr.derive_group_key("g", "user0", user_keys["user0"])

    def test_remove_last_member_deletes_group(self, setup):
        msk, pk, mgr = setup
        cloud = CloudStore()
        mgr.cloud = cloud
        mgr.create_group("g", ["user0"])
        mgr.remove_user("g", "user0")
        with pytest.raises(AccessControlError):
            mgr.members("g")
        assert not cloud.exists("/g/ibbe-metadata")
