"""CTR and GCM mode tests against NIST SP 800-38D vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import Ghash, ctr_transform, gcm_decrypt, gcm_encrypt
from repro.errors import AuthenticationError, CryptoError

# GCM test case 3/4 (AES-128) from the GCM spec test vectors.
_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_IV = bytes.fromhex("cafebabefacedbaddecaf888")
_PT_FULL = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestGcmVectors:
    def test_case_1_empty(self):
        # Key of zeros, empty plaintext: tag only.
        out = gcm_encrypt(bytes(16), bytes(12), b"")
        assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_single_block(self):
        out = gcm_encrypt(bytes(16), bytes(12), bytes(16))
        assert out[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert out[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_no_aad(self):
        out = gcm_encrypt(_KEY, _IV, _PT_FULL)
        assert out[:-16].hex() == (
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        )
        assert out[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        out = gcm_encrypt(_KEY, _IV, _PT_FULL[:60], _AAD)
        assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_case_5_short_iv(self):
        # 8-byte IV exercises the GHASH-based J0 derivation.
        out = gcm_encrypt(_KEY, bytes.fromhex("cafebabefacedbad"),
                          _PT_FULL[:60], _AAD)
        assert out[-16:].hex() == "3612d2e79e3b0785561be14aaca2fccb"

    def test_aes256_case_14(self):
        out = gcm_encrypt(bytes(32), bytes(12), b"")
        assert out.hex() == "530f8afbc74536b9a963b4f1c4cb738b"


class TestGcmSemantics:
    @given(st.binary(max_size=200), st.binary(max_size=40))
    @settings(max_examples=25)
    def test_roundtrip(self, plaintext, aad):
        key = bytes(range(32))
        nonce = bytes(12)
        out = gcm_encrypt(key, nonce, plaintext, aad)
        assert gcm_decrypt(key, nonce, out, aad) == plaintext

    def test_tamper_ciphertext_detected(self):
        key, nonce = bytes(32), bytes(12)
        out = bytearray(gcm_encrypt(key, nonce, b"secret message"))
        out[0] ^= 1
        with pytest.raises(AuthenticationError):
            gcm_decrypt(key, nonce, bytes(out))

    def test_tamper_tag_detected(self):
        key, nonce = bytes(32), bytes(12)
        out = bytearray(gcm_encrypt(key, nonce, b"secret message"))
        out[-1] ^= 1
        with pytest.raises(AuthenticationError):
            gcm_decrypt(key, nonce, bytes(out))

    def test_wrong_aad_detected(self):
        key, nonce = bytes(32), bytes(12)
        out = gcm_encrypt(key, nonce, b"data", aad=b"right")
        with pytest.raises(AuthenticationError):
            gcm_decrypt(key, nonce, out, aad=b"wrong")

    def test_wrong_key_detected(self):
        nonce = bytes(12)
        out = gcm_encrypt(bytes(32), nonce, b"data")
        with pytest.raises(AuthenticationError):
            gcm_decrypt(bytes(31) + b"\x01", nonce, out)

    def test_too_short_rejected(self):
        with pytest.raises(AuthenticationError):
            gcm_decrypt(bytes(32), bytes(12), b"short")


class TestCtr:
    def test_involution(self):
        aes = AES(bytes(32))
        data = b"counter mode data of odd length!!"
        once = ctr_transform(aes, bytes(12), data)
        assert ctr_transform(aes, bytes(12), once) == data

    def test_nonce_length_enforced(self):
        with pytest.raises(CryptoError):
            ctr_transform(AES(bytes(16)), bytes(11), b"x")

    @given(st.binary(max_size=100))
    @settings(max_examples=20)
    def test_length_preserved(self, data):
        aes = AES(bytes(16))
        assert len(ctr_transform(aes, bytes(12), data)) == len(data)

    def test_distinct_counters_distinct_keystream(self):
        aes = AES(bytes(16))
        a = ctr_transform(aes, bytes(12), bytes(16), initial_counter=0)
        b = ctr_transform(aes, bytes(12), bytes(16), initial_counter=1)
        assert a != b


class TestGhash:
    def test_zero_key_annihilates(self):
        assert Ghash(bytes(16)).update(b"anything here").digest() == bytes(16)

    def test_incremental_blocks(self):
        h = bytes(range(16))
        one = Ghash(h).update(bytes(32)).digest()
        two = Ghash(h).update(bytes(16)).update(bytes(16)).digest()
        assert one == two

    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_table_method_matches_reference(self, h, x):
        """Shoup's 4-bit tables must be bit-identical to the bit-by-bit
        reference multiplication."""
        from repro.crypto.modes import _gf128_mul
        ghash = Ghash(h)
        x_int = int.from_bytes(x, "big")
        h_int = int.from_bytes(h, "big")
        assert ghash._mul_h(x_int) == _gf128_mul(x_int, h_int)

    @given(st.binary(min_size=16, max_size=16),
           st.binary(max_size=100))
    @settings(max_examples=25)
    def test_update_matches_reference_chain(self, h, data):
        from repro.crypto.modes import _gf128_mul
        h_int = int.from_bytes(h, "big")
        expected = 0
        for offset in range(0, len(data), 16):
            block = data[offset:offset + 16].ljust(16, b"\x00")
            expected = _gf128_mul(
                expected ^ int.from_bytes(block, "big"), h_int
            )
        assert Ghash(h).update(data).digest() == expected.to_bytes(16, "big")
