"""Property-based tests of IBBE membership invariants.

A random sequence of add/remove/rekey operations, applied through the
O(1) MSK fast paths, must at every step satisfy:

* every current member decrypts the current broadcast key;
* the incrementally maintained ciphertext is structurally identical (C3)
  to a fresh encryption of the current set;
* after any remove or rekey, the broadcast key changes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ibbe
from repro.crypto.rng import DeterministicRng

POOL = [f"m{i}" for i in range(12)]

ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "rekey"]),
              st.integers(min_value=0, max_value=len(POOL) - 1)),
    min_size=1, max_size=10,
)


@given(ops=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_membership_invariant(group, ibbe_system, user_keys, ops, seed):
    msk, pk = ibbe_system
    rng = DeterministicRng(f"prop{seed}")
    members = ["m0"]
    keys = {u: ibbe.extract(msk, pk, u) for u in POOL}
    bk, ct = ibbe.encrypt_msk(msk, pk, members, rng)

    for kind, index in ops:
        user = POOL[index]
        if kind == "add" and user not in members and len(members) < pk.m:
            ct = ibbe.add_user_msk(msk, pk, ct, user)
            members.append(user)
        elif kind == "remove" and user in members and len(members) > 1:
            old_bk = bk
            bk, ct = ibbe.remove_user_msk(msk, pk, ct, user, rng)
            members.remove(user)
            assert bk != old_bk
        elif kind == "rekey":
            old_bk = bk
            bk, ct = ibbe.rekey(pk, ct, rng)
            assert bk != old_bk
        else:
            continue

        # Invariant 1: structural equality with a fresh encryption.
        _, fresh = ibbe.encrypt_msk(msk, pk, members, rng)
        assert ct.c3 == fresh.c3

        # Invariant 2: a sampled member decrypts (checking all members on
        # every step would be O(n³) across the run; sampling keeps the
        # suite fast while the dedicated unit tests check exhaustively).
        probe = members[rng.randint_below(len(members))]
        assert ibbe.decrypt(pk, keys[probe], members, ct) == bk


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_pk_and_msk_encryption_interchangeable(group, ibbe_system,
                                               user_keys, seed):
    """A ciphertext from either path decrypts identically."""
    msk, pk = ibbe_system
    rng = DeterministicRng(f"interop{seed}")
    size = 1 + rng.randint_below(6)
    members = [f"user{i}" for i in range(size)]
    bk_a, ct_a = ibbe.encrypt_pk(pk, members, rng)
    bk_b, ct_b = ibbe.encrypt_msk(msk, pk, members, rng)
    probe = members[rng.randint_below(len(members))]
    assert ibbe.decrypt(pk, user_keys[probe], members, ct_a) == bk_a
    assert ibbe.decrypt(pk, user_keys[probe], members, ct_b) == bk_b
