"""Cross-process telemetry: worker-side capture, parent-side merge.

The load-bearing invariant: a traced operation reports the same work at
any worker count.  Spans opened inside pool workers (and counters they
bump) must ride back with the task result and merge into the parent
tracer — otherwise ``workers=4`` silently under-reports exactly the
parallel work the trace was meant to explain.
"""

from __future__ import annotations

import json
from collections import Counter as Multiset

import pytest

from repro import obs, quickstart_system
from repro.crypto.rng import DeterministicRng
from repro.obs.collect import (
    capture_task,
    merge_task_telemetry,
    merge_traces,
    register_worker_source,
    worker_sources,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import Tracer, tracer as global_tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    tr = global_tracer()
    tr.reset()
    tr.disable()
    yield
    tr.reset()
    tr.disable()


def _traced_create_group(workers: int):
    """Create one 1000-user group under tracing; return (span name
    multiset, tid set, merged metrics)."""
    system = quickstart_system(
        partition_capacity=100, params="toy64", workers=workers,
        rng=DeterministicRng(f"collect:{workers}"),
    )
    tr = global_tracer()
    tr.reset()
    obs.enable()
    try:
        system.admin.create_group("g", [f"u{i}" for i in range(1000)])
        spans = tr.spans()
        names = Multiset(span.name for span in spans)
        tids = {span.tid for span in spans}
        metrics = system.telemetry()["metrics"]
        return names, tids, metrics, spans
    finally:
        obs.disable()
        system.close()


class TestWorkerParity:
    """Acceptance: traced create_group at workers=2 matches serial."""

    @pytest.fixture(scope="class")
    def runs(self):
        serial = _traced_create_group(workers=1)
        parallel = _traced_create_group(workers=2)
        return serial, parallel

    def test_span_name_multisets_identical(self, runs):
        (serial_names, _, _, _), (par_names, _, _, _) = runs
        assert serial_names == par_names
        # The partition-build tasks themselves are visible.
        assert serial_names["par.task"] >= 10

    def test_par_task_totals_identical(self, runs):
        (_, _, serial_metrics, _), (_, _, par_metrics, _) = runs
        assert serial_metrics["par.tasks"] == par_metrics["par.tasks"]
        # Every dispatched task produced one latency observation.
        assert par_metrics["par.task.seconds.count"] == \
            par_metrics["par.tasks"]

    def test_zero_dropped_spans(self, runs):
        (_, _, serial_metrics, _), (_, _, par_metrics, _) = runs
        assert serial_metrics["obs.spans.dropped"] == 0
        assert par_metrics["obs.spans.dropped"] == 0

    def test_worker_spans_carry_worker_lanes(self, runs):
        (_, serial_tids, _, _), (_, par_tids, _, _) = runs
        assert serial_tids == {0}
        # Parent lane plus at least one worker-pid lane.
        assert 0 in par_tids
        assert len(par_tids) >= 2
        assert all(tid >= 0 for tid in par_tids)

    def test_chrome_trace_validates(self, runs, tmp_path):
        """The merged parallel trace renders as well-formed Chrome
        ``trace_event`` JSON (object format, complete events)."""
        (_, _, _, _), (_, par_tids, _, spans) = runs
        path = tmp_path / "trace.json"
        written = obs.write_chrome_trace(spans, path)
        assert written == len(spans)
        trace = json.loads(path.read_text("utf-8"))
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"X", "M"}
        for event in events:
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
            if event["ph"] == "X":
                assert isinstance(event["ts"], int) and event["ts"] >= 0
                assert isinstance(event["dur"], int) and event["dur"] >= 1
                assert isinstance(event["cat"], str)
        # One thread_name metadata event per lane, naming workers.
        lanes = {event["tid"]: event["args"]["name"] for event in events
                 if event["ph"] == "M" and event["name"] == "thread_name"}
        assert set(lanes) == par_tids
        assert lanes[0] == "main"
        for tid, label in lanes.items():
            if tid != 0:
                assert label == f"worker-{tid}"


class TestTaskCapture:
    def test_capture_swaps_in_fresh_tracer(self):
        parent = global_tracer()
        obs.enable()
        with parent.span("outer"):
            pass  # a parent span the capture must NOT re-export
        capture = capture_task("kernel_x")
        with capture:
            with obs.span("inner.work"):
                pass
            assert global_tracer() is not parent
        assert global_tracer() is parent
        payload = capture.payload()
        names = [row["name"] for row in payload["spans"]]
        assert "outer" not in names
        assert set(names) == {"inner.work", "par.task"}
        assert payload["dropped"] == 0
        assert capture.duration > 0

    def test_payload_records_kernel_and_pid(self):
        import os

        capture = capture_task("kernel_y")
        with capture:
            pass
        payload = capture.payload()
        assert payload["pid"] == os.getpid()
        root = next(row for row in payload["spans"]
                    if row["name"] == "par.task")
        assert root["attrs"]["kernel"] == "kernel_y"

    def test_empty_capture_payload_is_none_only_when_no_spans(self):
        # par.task itself is always recorded, so a payload exists.
        capture = capture_task("kernel_z")
        with capture:
            pass
        assert capture.payload() is not None


class TestMergeTraces:
    def _rows(self, tracer: Tracer):
        return [span.to_dict() for span in tracer.spans()]

    def test_ids_are_remapped_and_links_preserved(self):
        worker = Tracer(enabled=True)
        with worker.span("parent.op"):
            with worker.span("child.op"):
                pass
        target = Tracer(enabled=True)
        target.span("preexisting").__exit__(None, None, None)
        with target.span("dispatch"):
            kept = merge_traces(target, self._rows(worker), tid=4242)
        assert kept == 2
        merged = {span.name: span for span in target.spans()}
        child, parent = merged["child.op"], merged["parent.op"]
        assert child.parent_id == parent.span_id
        assert parent.tid == child.tid == 4242
        # Foreign ids never collide with the target's own.
        ids = [span.span_id for span in target.spans()]
        assert len(ids) == len(set(ids))

    def test_roots_attach_under_active_span_and_absorb_self_time(self):
        worker = Tracer(enabled=True)
        with worker.span("task.root"):
            pass
        rows = self._rows(worker)
        target = Tracer(enabled=True)
        dispatch = target.span("dispatch")
        with dispatch:
            merge_traces(target, rows)
        merged_root = next(span for span in target.spans()
                           if span.name == "task.root")
        assert merged_root.parent_id == dispatch.span_id
        assert merged_root.depth == dispatch.depth + 1
        # The dispatching span's self time excludes the merged work.
        assert dispatch.children_seconds >= merged_root.duration

    def test_counter_deltas_route_to_registered_source(self):
        source = register_worker_source(MetricRegistry())
        counter = source.counter("fake.widgets")
        before = counter.value
        try:
            target = Tracer(enabled=True)
            merge_task_telemetry(
                {"pid": 7, "spans": [],
                 "counters": {"fake.widgets": 3, "unknown.metric": 9},
                 "dropped": 2},
                target=target,
            )
            assert counter.value == before + 3
            # Unknown names are dropped, worker drops carried over.
            assert target.dropped == 2
        finally:
            from repro.obs import collect
            collect._WORKER_SOURCES.remove(source)

    def test_merge_none_payload_is_noop(self):
        target = Tracer(enabled=True)
        assert merge_task_telemetry(None, target=target) == 0
        assert len(target) == 0


class TestPrecompWorkerSource:
    def test_ec_precomp_registry_is_registered(self):
        from repro.ec import precomp_registry

        assert precomp_registry in worker_sources()
