"""Pairing substrate tests: parameters, bilinearity, group wrappers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import PairingError, ParameterError
from repro.mathutils.primes import is_probable_prime
from repro.pairing import (
    G1Element,
    GTElement,
    PairingGroup,
    PairingParams,
    generate_params,
    preset,
    toy64,
)


class TestParams:
    def test_toy64_wellformed(self):
        params = toy64()
        assert params.p % 4 == 3
        assert (params.p + 1) % params.q == 0
        assert is_probable_prime(params.p)
        assert is_probable_prime(params.q)

    def test_preset_cached_and_deterministic(self):
        assert preset("toy64") is preset("toy64")
        assert preset("toy64").q == toy64().q

    def test_unknown_preset_raises(self):
        with pytest.raises(ParameterError):
            preset("nope")

    def test_generate_custom(self):
        params = generate_params(32, 64, DeterministicRng("custom"))
        assert params.q.bit_length() == 32
        assert params.p.bit_length() == 64
        group = PairingGroup(params)
        e = group.pair(group.g1, group.g1)
        assert not e.is_identity()

    def test_generate_rejects_tight_sizes(self):
        with pytest.raises(ParameterError):
            generate_params(32, 33, DeterministicRng("x"))

    def test_params_validation(self):
        good = toy64()
        with pytest.raises(ParameterError):
            PairingParams(q=good.q, p=good.p + 2, generator=good.generator)
        with pytest.raises(ParameterError):
            PairingParams(q=good.q, p=good.p, generator=(1, 1))

    def test_generator_has_order_q(self):
        params = toy64()
        group = PairingGroup(params)
        assert (group.g1 ** params.q).is_identity()
        assert not group.g1.is_identity()


class TestBilinearity:
    @given(a=st.integers(min_value=1, max_value=2**32),
           b=st.integers(min_value=1, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_bilinear(self, group, a, b):
        g = group.g1
        lhs = group.pair(g ** a, g ** b)
        rhs = group.pair(g, g) ** (a * b)
        assert lhs == rhs

    def test_nondegenerate(self, group):
        assert not group.pair(group.g1, group.g1).is_identity()

    def test_symmetric_arguments(self, group):
        g = group.g1
        assert group.pair(g ** 3, g ** 7) == group.pair(g ** 7, g ** 3)

    def test_identity_absorbs(self, group):
        g = group.g1
        assert group.pair(group.g1_identity(), g).is_identity()
        assert group.pair(g, group.g1_identity()).is_identity()

    def test_gt_order(self, group):
        e = group.gt_generator()
        assert (e ** group.q).is_identity()

    def test_inverse_argument(self, group):
        g = group.g1
        e = group.pair(g, g)
        assert group.pair(g.inverse(), g) == e.inverse()


class TestG1Element:
    def test_group_ops(self, group):
        g = group.g1
        assert g * g == g ** 2
        assert (g ** 5) / (g ** 2) == g ** 3
        assert (g * g.inverse()).is_identity()

    def test_exponent_reduced_mod_q(self, group):
        g = group.g1
        assert g ** (group.q + 5) == g ** 5

    def test_encode_roundtrip(self, group):
        g = group.g1 ** 42
        assert G1Element.decode(group, g.encode()) == g

    def test_multi_mul(self, group):
        g = group.g1
        result = group.multi_mul_g1([(2, g), (3, g ** 2)])
        assert result == g ** 8

    def test_hash_and_eq(self, group):
        assert group.g1 ** 3 == group.g1 ** 3
        assert hash(group.g1 ** 3) == hash(group.g1 ** 3)


class TestGTElement:
    def test_ops(self, group):
        e = group.gt_generator()
        assert e * e == e ** 2
        assert (e ** 5) / (e ** 2) == e ** 3
        assert (e * e.inverse()).is_identity()

    def test_inverse_is_conjugate(self, group):
        e = group.gt_generator() ** 7
        assert (e * e.inverse()).is_identity()

    def test_encode_roundtrip(self, group):
        e = group.gt_generator() ** 9
        assert GTElement.decode(group, e.encode()) == e

    def test_decode_malformed(self, group):
        with pytest.raises(PairingError):
            GTElement.decode(group, b"\x00")

    def test_digest_stable_and_distinct(self, group):
        e = group.gt_generator()
        assert e.digest() == e.digest()
        assert e.digest() != (e ** 2).digest()
        assert len(e.digest()) == 32


class TestHashToScalar:
    def test_in_range_nonzero(self, group):
        for i in range(50):
            h = group.hash_to_scalar(f"user{i}")
            assert 1 <= h < group.q

    def test_deterministic(self, group):
        assert group.hash_to_scalar("alice") == group.hash_to_scalar("alice")

    def test_distinct(self, group):
        values = {group.hash_to_scalar(f"u{i}") for i in range(100)}
        assert len(values) == 100

    def test_accepts_bytes(self, group):
        assert group.hash_to_scalar(b"alice") == group.hash_to_scalar("alice")


class TestMillerImplementations:
    """The inversion-free Jacobian loop must equal the affine reference."""

    @given(a=st.integers(min_value=1, max_value=2**48),
           b=st.integers(min_value=1, max_value=2**48))
    @settings(max_examples=15, deadline=None)
    def test_jacobian_matches_affine(self, group, a, b):
        from repro.pairing.miller import tate_pairing, tate_pairing_affine
        P = (group.g1 ** a).point
        Q = (group.g1 ** b).point
        assert tate_pairing(P.x, P.y, Q.x, Q.y, group.p, group.q) == (
            tate_pairing_affine(P.x, P.y, Q.x, Q.y, group.p, group.q)
        )

    def test_self_pairing_matches(self, group):
        from repro.pairing.miller import tate_pairing, tate_pairing_affine
        P = group.g1.point
        assert tate_pairing(P.x, P.y, P.x, P.y, group.p, group.q) == (
            tate_pairing_affine(P.x, P.y, P.x, P.y, group.p, group.q)
        )

    def test_affine_reference_rejects_wrong_order(self, group):
        """Both implementations enforce the subgroup check."""
        from repro.pairing.miller import tate_pairing_affine
        from repro.crypto.rng import DeterministicRng
        from repro.mathutils.modular import jacobi_symbol, modsqrt
        curve = group.curve
        rng = DeterministicRng("edge-affine")
        while True:
            x = rng.randint_below(curve.p)
            rhs = (pow(x, 3, curve.p) + x) % curve.p
            if rhs == 0 or jacobi_symbol(rhs, curve.p) != 1:
                continue
            y = modsqrt(rhs, curve.p)
            point = curve.point(x, y)
            if not (point * group.q).is_infinity():
                break
        with pytest.raises(PairingError):
            tate_pairing_affine(point.x, point.y, point.x, point.y,
                                group.p, group.q)


class TestMillerEdgeCases:
    def test_pairing_of_low_order_rejected(self, group):
        """Points outside the order-q subgroup must be rejected."""
        from repro.pairing.miller import tate_pairing
        curve = group.curve
        # Find a point of order != q: multiply generator-lift by q to land
        # outside... easier: a random point NOT multiplied by the cofactor.
        rng = DeterministicRng("edge")
        while True:
            x = rng.randint_below(curve.p)
            rhs = (pow(x, 3, curve.p) + x) % curve.p
            from repro.mathutils.modular import jacobi_symbol, modsqrt
            if rhs == 0 or jacobi_symbol(rhs, curve.p) != 1:
                continue
            y = modsqrt(rhs, curve.p)
            point = curve.point(x, y)
            if not (point * group.q).is_infinity():
                break
        with pytest.raises(PairingError):
            tate_pairing(point.x, point.y, point.x, point.y,
                         group.p, group.q)

    def test_consistency_across_generators(self, group):
        """e(g^a, g) == e(g, g^a) for an independent sanity sweep."""
        g = group.g1
        for a in (2, 3, 17, 1 << 20):
            assert group.pair(g ** a, g) == group.pair(g, g ** a)
