"""Batch admin operations and group deletion."""

import pytest

from repro.core.metadata import descriptor_path, sealed_key_path
from repro.errors import AccessControlError, MembershipError
from tests.conftest import make_system


@pytest.fixture()
def system():
    system = make_system("batch", capacity=3)
    system.admin.create_group("g", ["a", "b"])
    return system


class TestBatchAdd:
    def test_batch_members_join(self, system):
        system.admin.add_users("g", [f"n{i}" for i in range(7)])
        members = set(system.admin.members("g"))
        assert members == {"a", "b"} | {f"n{i}" for i in range(7)}

    def test_batch_is_one_epoch(self, system):
        epoch_before = system.admin.group_state("g").epoch
        system.admin.add_users("g", ["x", "y", "z"])
        assert system.admin.group_state("g").epoch == epoch_before + 1

    def test_batch_clients_can_decrypt(self, system):
        system.admin.add_users("g", [f"n{i}" for i in range(5)])
        veteran = system.make_client("g", "a")
        rookie = system.make_client("g", "n4")
        veteran.sync()
        rookie.sync()
        assert veteran.current_group_key() == rookie.current_group_key()

    def test_batch_does_not_rekey(self, system):
        client = system.make_client("g", "a")
        client.sync()
        gk = client.current_group_key()
        system.admin.add_users("g", ["x", "y"])
        client.sync()
        assert client.current_group_key() == gk

    def test_duplicate_in_batch_rejected(self, system):
        with pytest.raises(MembershipError):
            system.admin.add_users("g", ["x", "x"])
        with pytest.raises(MembershipError):
            system.admin.add_users("g", ["a"])
        # Failed validation must not have mutated anything.
        assert set(system.admin.members("g")) == {"a", "b"}

    def test_batch_fills_then_spills(self, system):
        """With capacity 3 and 2 seats taken, a batch of 5 must fill the
        open partition and create new ones."""
        system.admin.add_users("g", [f"n{i}" for i in range(5)])
        state = system.admin.group_state("g")
        assert state.table.partition_count >= 3
        for pid in state.table.partition_ids:
            assert 1 <= len(state.table.members_of(pid)) <= 3

    def test_fewer_pushes_than_single_adds(self):
        batched = make_system("batch-metrics-a", capacity=4)
        batched.admin.create_group("g", ["a"])
        batched.admin.add_users("g", [f"n{i}" for i in range(8)])

        single = make_system("batch-metrics-b", capacity=4)
        single.admin.create_group("g", ["a"])
        for i in range(8):
            single.admin.add_user("g", f"n{i}")

        assert (batched.cloud.metrics.requests
                < single.cloud.metrics.requests)


class TestDeleteGroup:
    def test_delete_removes_all_objects(self, system):
        system.admin.delete_group("g")
        assert not system.cloud.exists("/g/p0")
        assert not system.cloud.exists(descriptor_path("g"))
        assert not system.cloud.exists(sealed_key_path("g"))
        with pytest.raises(AccessControlError):
            system.admin.group_state("g")

    def test_clients_lose_access(self, system):
        client = system.make_client("g", "a")
        client.sync()
        client.current_group_key()
        system.admin.delete_group("g")
        client.sync()
        from repro.errors import RevokedError
        with pytest.raises(RevokedError):
            client.current_group_key()

    def test_group_id_reusable_after_delete(self, system):
        system.admin.delete_group("g")
        system.admin.create_group("g", ["fresh"])
        assert system.admin.members("g") == ["fresh"]
