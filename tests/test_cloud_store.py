"""Cloud storage substrate tests: objects, versions, long polling,
batch commits, latency."""

import pytest

from repro.cloud import CloudBatch, CloudStore, LatencyModel
from repro.errors import ConflictError, NotFoundError, StorageError


@pytest.fixture()
def store():
    return CloudStore()


class TestObjects:
    def test_put_get(self, store):
        version = store.put("/g/p0", b"data")
        assert version == 1
        obj = store.get("/g/p0")
        assert obj.data == b"data"
        assert obj.version == 1

    def test_versions_increment(self, store):
        store.put("/g/p0", b"v1")
        assert store.put("/g/p0", b"v2") == 2
        assert store.get("/g/p0").data == b"v2"

    def test_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("/nope")

    def test_delete(self, store):
        store.put("/g/p0", b"x")
        store.delete("/g/p0")
        assert not store.exists("/g/p0")
        with pytest.raises(NotFoundError):
            store.delete("/g/p0")

    def test_path_normalization(self, store):
        store.put("g//p0", b"x")
        assert store.get("/g/p0").data == b"x"

    def test_bad_paths_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("", b"x")
        with pytest.raises(StorageError):
            store.put("/a/../b", b"x")

    def test_conditional_put(self, store):
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2", expected_version=1)
        with pytest.raises(ConflictError):
            store.put("/g/p0", b"v3", expected_version=1)

    def test_conditional_create(self, store):
        store.put("/new", b"x", expected_version=0)
        with pytest.raises(ConflictError):
            store.put("/new", b"y", expected_version=0)


class TestDirectories:
    def test_list_dir_immediate_children(self, store):
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        store.put("/g/sub/deep", b"c")
        store.put("/other/p0", b"d")
        assert store.list_dir("/g") == ["/g/p0", "/g/p1", "/g/sub"]

    def test_total_stored_bytes(self, store):
        store.put("/g/p0", bytes(10))
        store.put("/g/p1", bytes(20))
        store.put("/h/p0", bytes(40))
        assert store.total_stored_bytes("/g") == 30
        assert store.total_stored_bytes() == 70


class TestLongPolling:
    def test_events_in_order(self, store):
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        events, cursor = store.poll_dir("/g")
        assert [e.path for e in events] == ["/g/p0", "/g/p1"]
        assert all(e.kind == "put" for e in events)

    def test_cursor_advances(self, store):
        store.put("/g/p0", b"a")
        _, cursor = store.poll_dir("/g")
        events, cursor2 = store.poll_dir("/g", cursor)
        assert events == []
        store.put("/g/p0", b"b")
        events, _ = store.poll_dir("/g", cursor2)
        assert len(events) == 1
        assert events[0].version == 2

    def test_scoped_to_directory(self, store):
        store.put("/g/p0", b"a")
        store.put("/other/p0", b"b")
        events, _ = store.poll_dir("/g")
        assert [e.path for e in events] == ["/g/p0"]

    def test_delete_events(self, store):
        store.put("/g/p0", b"a")
        store.delete("/g/p0")
        events, _ = store.poll_dir("/g")
        assert [e.kind for e in events] == ["put", "delete"]

    def test_after_sequence_past_end(self, store):
        store.put("/g/p0", b"a")
        events, cursor = store.poll_dir("/g", after_sequence=999)
        assert events == []
        assert cursor == 999  # the cursor never moves backwards

    def test_resubscribe_replays_history(self, store):
        """Delivery is at-least-once: a watcher that lost its cursor
        polls from zero and receives the full history again, with the
        same sequence numbers (dedup is the subscriber's job)."""
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        first, _ = store.poll_dir("/g")
        replay, _ = store.poll_dir("/g", after_sequence=0)
        assert [(e.kind, e.path, e.sequence) for e in replay] == \
            [(e.kind, e.path, e.sequence) for e in first]


class TestAdversaryView:
    def test_sees_everything(self, store):
        store.put("/g/p0", b"secret-ish")
        view = {obj.path: obj.data for obj in store.adversary_view()}
        assert view == {"/g/p0": b"secret-ish"}


class TestBatchCommit:
    def test_commit_applies_in_order(self, store):
        versions = store.commit(
            CloudBatch().put("/g/descriptor", b"d").put("/g/p0", b"a")
        )
        assert versions == {"/g/descriptor": 1, "/g/p0": 1}
        assert store.get("/g/p0").data == b"a"

    def test_commit_is_one_request(self, store):
        store.commit(CloudBatch().put("/g/p0", b"a").put("/g/p1", b"bb"))
        snap = store.metrics.snapshot()
        assert snap["requests"] == 1
        assert snap["batch_commits"] == 1
        assert snap["bytes_in"] == 3

    def test_conditional_put_inside_batch(self, store):
        store.put("/g/descriptor", b"v1")
        store.commit(CloudBatch().put("/g/descriptor", b"v2",
                                      expected_version=1))
        with pytest.raises(ConflictError):
            store.commit(CloudBatch().put("/g/descriptor", b"v3",
                                          expected_version=1))

    def test_failed_commit_leaves_store_untouched(self, store):
        store.put("/g/descriptor", b"v1")
        before = {o.path: (o.data, o.version) for o in store.adversary_view()}
        events_before, _ = store.poll_dir("/g")
        with pytest.raises(ConflictError):
            store.commit(
                CloudBatch()
                .put("/g/p0", b"partial")
                .put("/g/descriptor", b"v2", expected_version=7)
            )
        after = {o.path: (o.data, o.version) for o in store.adversary_view()}
        events_after, _ = store.poll_dir("/g")
        assert after == before
        assert len(events_after) == len(events_before)

    def test_delete_missing_raises_unless_ignored(self, store):
        with pytest.raises(NotFoundError):
            store.commit(CloudBatch().delete("/nope"))
        store.commit(CloudBatch().delete("/nope", ignore_missing=True))
        assert store.metrics.batch_commits == 1

    def test_put_after_delete_restarts_versions(self, store):
        store.put("/g/p0", b"old")
        store.put("/g/p0", b"old2")
        versions = store.commit(
            CloudBatch().delete("/g/p0").put("/g/p0", b"new")
        )
        # Matches sequential semantics: a delete resets the version chain.
        assert versions == {"/g/p0": 1}
        assert store.get("/g/p0").version == 1

    def test_commit_emits_ordinary_events(self, store):
        store.commit(CloudBatch().put("/g/p0", b"a").delete("/g/p0"))
        events, _ = store.poll_dir("/g")
        assert [e.kind for e in events] == ["put", "delete"]

    def test_conditional_put_sees_in_batch_writes(self, store):
        with pytest.raises(ConflictError):
            store.commit(
                CloudBatch()
                .put("/g/p0", b"a")
                .put("/g/p0", b"b", expected_version=0)
            )
        store.commit(
            CloudBatch()
            .put("/g/p0", b"a")
            .put("/g/p0", b"b", expected_version=1)
        )
        assert store.get("/g/p0").data == b"b"


class TestGetMany:
    def test_fetches_existing_and_skips_missing(self, store):
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"bb")
        objects = store.get_many(["/g/p0", "/g/p1", "/g/ghost"])
        assert {p: o.data for p, o in objects.items()} == {
            "/g/p0": b"a", "/g/p1": b"bb",
        }

    def test_single_request_bytes_out(self, store):
        store.put("/g/p0", bytes(10))
        store.put("/g/p1", bytes(20))
        requests_before = store.metrics.requests
        store.get_many(["/g/p0", "/g/p1"])
        assert store.metrics.requests == requests_before + 1
        assert store.metrics.bytes_out == 30


class TestMetricsAndLatency:
    def test_request_accounting(self, store):
        store.put("/g/p0", bytes(100))
        store.get("/g/p0")
        snap = store.metrics.snapshot()
        assert snap["requests"] == 2
        assert snap["bytes_in"] == 100   # upload volume (put payloads)
        assert snap["bytes_out"] == 100  # download volume (get payloads)

    def test_latency_model_disabled_by_default(self, store):
        store.put("/g/p0", b"x")
        assert store.metrics.simulated_latency_ms == 0.0

    def test_latency_model_accumulates(self):
        store = CloudStore(latency=LatencyModel.public_cloud(seed="t"))
        store.put("/g/p0", bytes(10_000))
        assert store.metrics.simulated_latency_ms >= 80.0

    def test_latency_deterministic(self):
        a = LatencyModel.public_cloud(seed="s")
        b = LatencyModel.public_cloud(seed="s")
        assert [a.sample(100) for _ in range(5)] == [b.sample(100) for _ in range(5)]
