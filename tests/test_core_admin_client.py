"""End-to-end system tests: administrator + cloud + clients (paper §V)."""

import pytest

from repro.core.metadata import partition_path
from repro.errors import (
    AccessControlError,
    MembershipError,
    RevokedError,
)
from tests.conftest import make_system

MEMBERS = [f"user{i}" for i in range(10)]


@pytest.fixture()
def system():
    return make_system("admin-client", capacity=4)


@pytest.fixture()
def populated(system):
    system.admin.create_group("team", MEMBERS)
    return system


class TestCreateGroup:
    def test_partition_layout(self, populated):
        state = populated.admin.group_state("team")
        assert state.table.partition_count == 3  # 4+4+2
        assert len(state.records) == 3

    def test_cloud_objects_written(self, populated):
        cloud = populated.cloud
        assert cloud.exists("/team/p0")
        assert cloud.exists("/team/p2")
        assert cloud.exists("/team/descriptor")

    def test_duplicate_group_rejected(self, populated):
        with pytest.raises(AccessControlError):
            populated.admin.create_group("team", ["x"])

    def test_empty_group_rejected(self, system):
        with pytest.raises(AccessControlError):
            system.admin.create_group("empty", [])

    def test_all_members_derive_same_key(self, populated):
        keys = set()
        for user in MEMBERS:
            client = populated.make_client("team", user)
            assert client.sync()
            keys.add(client.current_group_key())
        assert len(keys) == 1


class TestAddUser:
    def test_add_to_open_partition(self, populated):
        admin = populated.admin
        before = admin.group_state("team").table.partition_count
        admin.add_user("team", "newbie")  # p2 has room
        state = admin.group_state("team")
        assert state.table.partition_count == before
        assert "newbie" in state.table

    def test_add_creates_partition_when_full(self, populated):
        admin = populated.admin
        admin.add_user("team", "fill1")
        admin.add_user("team", "fill2")  # p2 now 4/4 — all full
        before = admin.group_state("team").table.partition_count
        admin.add_user("team", "overflow")
        assert admin.group_state("team").table.partition_count == before + 1

    def test_add_does_not_rekey(self, populated):
        client = populated.make_client("team", "user0")
        client.sync()
        gk_before = client.current_group_key()
        populated.admin.add_user("team", "newbie")
        client.sync()
        assert client.current_group_key() == gk_before

    def test_new_member_can_decrypt(self, populated):
        populated.admin.add_user("team", "newbie")
        client = populated.make_client("team", "newbie")
        client.sync()
        veteran = populated.make_client("team", "user0")
        veteran.sync()
        assert client.current_group_key() == veteran.current_group_key()

    def test_double_add_rejected(self, populated):
        with pytest.raises(MembershipError):
            populated.admin.add_user("team", "user0")

    def test_unknown_group_rejected(self, system):
        with pytest.raises(AccessControlError):
            system.admin.add_user("ghost", "x")


class TestRemoveUser:
    def test_revoked_user_locked_out(self, populated):
        victim = populated.make_client("team", "user5")
        victim.sync()
        victim.current_group_key()
        populated.admin.remove_user("team", "user5")
        victim.sync()
        with pytest.raises(RevokedError):
            victim.current_group_key()

    def test_remaining_members_rekeyed(self, populated):
        a = populated.make_client("team", "user0")
        b = populated.make_client("team", "user9")  # different partition
        a.sync(); b.sync()
        gk_before = a.current_group_key()
        populated.admin.remove_user("team", "user5")
        a.sync(); b.sync()
        gk_after = a.current_group_key()
        assert gk_after != gk_before
        assert b.current_group_key() == gk_after

    def test_remove_unknown_rejected(self, populated):
        with pytest.raises(MembershipError):
            populated.admin.remove_user("team", "stranger")

    def test_remove_last_member_clears_group(self):
        system = make_system("tiny", capacity=4)
        system.admin.create_group("solo", ["only"])
        system.admin.remove_user("solo", "only")
        state = system.admin.group_state("solo")
        assert len(state.table) == 0
        assert not system.cloud.exists(partition_path("solo", 0))

    def test_empty_partition_deleted_and_rest_rekeyed(self):
        system = make_system("empties", capacity=2, auto_repartition=False)
        system.admin.create_group("g", ["a", "b", "c"])  # [a,b], [c]
        survivor = system.make_client("g", "a")
        survivor.sync()
        gk_before = survivor.current_group_key()
        system.admin.remove_user("g", "c")  # hosting partition empties
        assert not system.cloud.exists(partition_path("g", 1))
        survivor.sync()
        assert survivor.current_group_key() != gk_before


class TestRepartition:
    def test_triggered_by_mass_removal(self):
        system = make_system("repart", capacity=4)
        system.admin.create_group("g", [f"u{i}" for i in range(12)])
        for user in ["u0", "u1", "u2", "u4", "u5", "u6"]:
            system.admin.remove_user("g", user)
        assert system.admin.metrics.repartitions >= 1
        state = system.admin.group_state("g")
        # 6 remaining members fit 2 partitions of 4.
        assert state.table.partition_count == 2

    def test_members_survive_repartition(self):
        system = make_system("repart2", capacity=4)
        system.admin.create_group("g", [f"u{i}" for i in range(12)])
        client = system.make_client("g", "u3")
        client.sync()
        for user in ["u0", "u1", "u2", "u4", "u5", "u6"]:
            system.admin.remove_user("g", user)
        client.sync()
        fresh = system.make_client("g", "u11")
        fresh.sync()
        assert client.current_group_key() == fresh.current_group_key()

    def test_manual_repartition_with_new_capacity(self):
        system = make_system("resize", capacity=2)
        system.admin.create_group("g", [f"u{i}" for i in range(8)])
        assert system.admin.group_state("g").table.partition_count == 4
        system.admin.repartition("g", new_capacity=4)
        state = system.admin.group_state("g")
        assert state.table.capacity == 4
        assert state.table.partition_count == 2
        client = system.make_client("g", "u0")
        client.sync()
        client.current_group_key()


class TestRekey:
    def test_rekey_rotates_for_all(self, populated):
        a = populated.make_client("team", "user0")
        a.sync()
        gk_before = a.current_group_key()
        populated.admin.rekey("team")
        a.sync()
        assert a.current_group_key() != gk_before


class TestClientSync:
    def test_sync_idempotent_when_quiet(self, populated):
        client = populated.make_client("team", "user0")
        assert client.sync()
        assert not client.sync()

    def test_client_rejects_forged_records(self, populated):
        """A curious cloud cannot substitute its own partition record."""
        from repro.core.metadata import PartitionRecord
        from repro.crypto import ecdsa as ecdsa_mod
        from repro.crypto.rng import DeterministicRng
        state = populated.admin.group_state("team")
        record = state.records[0]
        mallory_key = ecdsa_mod.generate_keypair(DeterministicRng("mallory"))
        forged = PartitionRecord(
            group_id="team", partition_id=0,
            members=record.members + ("mallory",),
            ciphertext=record.ciphertext, envelope=record.envelope,
        ).signed(mallory_key)
        populated.cloud.put("/team/p0", forged)
        client = populated.make_client("team", "user0")
        from repro.errors import AuthenticationError
        with pytest.raises(AuthenticationError):
            client.sync()

    def test_group_key_cached_until_change(self, populated):
        client = populated.make_client("team", "user0")
        client.sync()
        client.current_group_key()
        assert client.decrypt_count == 1
        client.current_group_key()
        assert client.decrypt_count == 1  # cache hit
        populated.admin.rekey("team")
        client.sync()
        client.current_group_key()
        assert client.decrypt_count == 2

    def test_never_added_user_has_no_key(self, populated):
        outsider = populated.make_client("team", "outsider")
        outsider.sync()
        with pytest.raises(RevokedError):
            outsider.current_group_key()


class TestMetrics:
    def test_counters(self, populated):
        admin = populated.admin
        admin.add_user("team", "x1")
        admin.remove_user("team", "x1")
        snap = admin.metrics.snapshot()
        assert snap["groups_created"] == 1
        assert snap["users_added"] == 1
        assert snap["users_removed"] == 1
        assert snap["bytes_pushed"] > 0

    def test_footprints(self, populated):
        state = populated.admin.group_state("team")
        assert 0 < state.crypto_footprint() < state.total_footprint()
