"""AES block cipher against FIPS-197 vectors, plus properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.errors import CryptoError

# FIPS-197 Appendix C example vectors.
_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),           # AES-128 (C.1)
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),           # AES-192 (C.2)
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),           # AES-256 (C.3)
]


class TestFipsVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", _VECTORS)
    def test_encrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.encrypt_block(_PLAIN).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", _VECTORS)
    def test_decrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.decrypt_block(bytes.fromhex(ct_hex)) == _PLAIN

    def test_zero_key_vector(self):
        # Classic known-answer: AES-128 of zero block under zero key.
        assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == (
            "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )


class TestProperties:
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=32, max_size=32))
    @settings(max_examples=25)
    def test_roundtrip_256(self, block, key):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    @settings(max_examples=25)
    def test_roundtrip_128(self, block, key):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=24, max_size=24))
    @settings(max_examples=10)
    def test_roundtrip_192(self, key):
        aes = AES(key)
        block = bytes(range(16))
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_key_sensitivity(self):
        block = bytes(16)
        a = AES(bytes(32)).encrypt_block(block)
        b = AES(bytes(31) + b"\x01").encrypt_block(block)
        assert a != b


class TestErrors:
    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES(bytes(15))

    def test_bad_block_length_encrypt(self):
        with pytest.raises(CryptoError):
            AES(bytes(16)).encrypt_block(bytes(15))

    def test_bad_block_length_decrypt(self):
        with pytest.raises(CryptoError):
            AES(bytes(16)).decrypt_block(bytes(17))
