"""Multi-administrator extension tests: MSK migration + lock-free OCC."""

import pytest

from repro.core.multiadmin import ConcurrentAdministrator, join_administration
from repro.core.admin import GroupAdministrator
from repro.crypto.rng import DeterministicRng
from repro.enclave_app import IbbeEnclave
from repro.errors import ConflictError, EnclaveError, MembershipError
from repro.sgx.device import SgxDevice
from tests.conftest import make_system


def make_second_admin(system, seed: str = "admin2"):
    """A second administrator: own enclave on its own device, migrated
    MSK, shared signing key (the organisational role key)."""
    device = SgxDevice(rng=DeterministicRng(f"{seed}-device"))
    system.ias.register_device(device.device_id,
                               device.attestation_public_key)
    enclave = IbbeEnclave.load(device, dict(system.enclave.config))
    join_administration(system, enclave)
    admin = GroupAdministrator(
        enclave=enclave,
        cloud=system.cloud,
        signing_key=system.admin._signing_key,
        partition_capacity=system.admin.partition_capacity,
        rng=DeterministicRng(seed),
    )
    return admin


class TestMskMigration:
    def test_migrated_enclave_extracts_identical_keys(self):
        system = make_system("mig1", capacity=4)
        admin2 = make_second_admin(system)
        a = system.enclave.call("extract_user_key_raw", "alice")
        b = admin2.enclave.call("extract_user_key_raw", "alice")
        assert a == b

    def test_migration_requires_same_measurement(self, group):
        system = make_system("mig2", capacity=4)
        device = SgxDevice(rng=DeterministicRng("mig2-dev"))
        system.ias.register_device(device.device_id,
                                   device.attestation_public_key)

        class PatchedEnclave(IbbeEnclave):
            """Different code → different measurement."""

        enclave = IbbeEnclave  # silence linters
        rogue = PatchedEnclave.load(device, dict(system.enclave.config))
        with pytest.raises(Exception):
            join_administration(system, rogue)

    def test_export_requires_pinned_ca(self, group):
        device = SgxDevice(rng=DeterministicRng("nopin"))
        enclave = IbbeEnclave.load(device, {"pairing_group": group})
        enclave.call("setup_system", 4)
        with pytest.raises(EnclaveError, match="pinned"):
            enclave.call("export_master_secret", object())

    def test_import_rejected_when_already_provisioned(self):
        system = make_system("mig3", capacity=4)
        with pytest.raises(EnclaveError, match="already"):
            system.enclave.call("import_master_secret", b"x",
                                system.public_key)

    def test_blob_unreadable_by_third_enclave(self):
        """The migration blob is bound to the certified target key."""
        system = make_system("mig4", capacity=4)
        device_b = SgxDevice(rng=DeterministicRng("mig4-b"))
        device_c = SgxDevice(rng=DeterministicRng("mig4-c"))
        for device in (device_b, device_c):
            system.ias.register_device(device.device_id,
                                       device.attestation_public_key)
        target = IbbeEnclave.load(device_b, dict(system.enclave.config))
        eavesdropper = IbbeEnclave.load(device_c,
                                        dict(system.enclave.config))
        from repro.sgx.attestation import setup_trust
        system.auditor.approve_measurement(target.measurement)
        cert = setup_trust(target, system.auditor)
        blob = system.enclave.call("export_master_secret", cert)
        with pytest.raises(Exception):
            eavesdropper.call("import_master_secret", blob,
                              system.public_key)


class TestCrossEnclaveSealedKey:
    """Sealed group keys are platform-bound; a second admin must recover
    the gk through the enclave (MSK) rather than unseal a foreign blob."""

    def test_add_after_other_admins_rekey(self):
        # The interleaving the convergence property test originally found:
        # B revokes (pushing a gk sealed by B's enclave); A reloads and
        # then needs the gk to open a new partition.
        system = make_system("xseal", capacity=2)
        admin_a = system.admin
        admin_b = make_second_admin(system, "xseal-b")
        admin_a.create_group("g", ["a", "b", "c", "d"])

        admin_b.load_group_from_cloud("g")
        admin_b.remove_user("g", "b")   # sealed gk now from B's enclave

        admin_a.load_group_from_cloud("g")
        # All partitions full after the next add → new-partition path →
        # A must open the (foreign) sealed gk.
        admin_a.add_user("g", "e")
        admin_a.add_user("g", "f")

        client_old = system.make_client("g", "a")
        client_new = system.make_client("g", "f")
        client_old.sync(); client_new.sync()
        assert client_old.current_group_key() == client_new.current_group_key()

    def test_recover_and_reseal_matches_original_gk(self):
        system = make_system("xseal2", capacity=4)
        system.admin.create_group("g", ["a", "b"])
        record = next(iter(system.admin.group_state("g").records.values()))
        sealed = system.enclave.call(
            "recover_and_reseal", "g", list(record.members),
            record.ciphertext, record.envelope,
        )
        # The recovered gk (behind the new seal) matches what members see.
        blob = system.enclave.call("create_partition", "g", ["z"], sealed)
        client = system.make_client("g", "a")
        client.sync()
        from repro.core.envelope import unwrap_group_key
        from repro import ibbe as ibbe_mod
        usk = system.user_key("z")
        ct = ibbe_mod.IbbeCiphertext.decode(system.group, blob.ciphertext)
        bk = ibbe_mod.decrypt(system.public_key, usk, ["z"], ct)
        gk = unwrap_group_key(bk.digest(), blob.envelope, aad=b"g")
        assert gk == client.current_group_key()

    def test_recover_requires_members(self):
        system = make_system("xseal3", capacity=4)
        system.admin.create_group("g", ["a"])
        record = next(iter(system.admin.group_state("g").records.values()))
        with pytest.raises(EnclaveError):
            system.enclave.call("recover_and_reseal", "g", [],
                                record.ciphertext, record.envelope)


class TestConcurrentAdministration:
    def test_sequential_ops_from_two_admins(self):
        system = make_system("occ1", capacity=4)
        admin1 = ConcurrentAdministrator(system.admin)
        admin2 = ConcurrentAdministrator(make_second_admin(system, "occ1b"))

        admin1.create_group("g", ["a", "b", "c"])
        admin2.refresh("g")
        admin2.add_user("g", "d")
        # admin1's view is now stale; the retry loop must recover.
        admin1.add_user("g", "e")
        assert admin1.conflicts_resolved >= 1
        members = set(system.admin.members("g"))
        assert members == {"a", "b", "c", "d", "e"}

    def test_interleaved_removals_converge(self):
        system = make_system("occ2", capacity=4)
        admin1 = ConcurrentAdministrator(system.admin)
        admin2 = ConcurrentAdministrator(make_second_admin(system, "occ2b"))
        admin1.create_group("g", [f"u{i}" for i in range(8)])
        admin2.refresh("g")

        admin1.remove_user("g", "u0")
        admin2.remove_user("g", "u1")   # stale → retry
        admin1.remove_user("g", "u2")   # stale again → retry
        survivors = set(admin1.admin.load_group_from_cloud("g")
                        .table.all_members())
        assert survivors == {"u3", "u4", "u5", "u6", "u7"}

    def test_clients_follow_multi_admin_rekeys(self):
        system = make_system("occ3", capacity=4)
        admin1 = ConcurrentAdministrator(system.admin)
        admin2 = ConcurrentAdministrator(make_second_admin(system, "occ3b"))
        admin1.create_group("g", ["a", "b", "c"])
        client = system.make_client("g", "a")
        client.sync()
        gk0 = client.current_group_key()

        admin2.refresh("g")
        admin2.remove_user("g", "b")
        client.sync()
        gk1 = client.current_group_key()
        assert gk1 != gk0

        admin1.remove_user("g", "c")   # stale → retry via reload
        client.sync()
        gk2 = client.current_group_key()
        assert gk2 != gk1

    def test_conflicting_semantic_ops_surface(self):
        """Both admins revoke the same user: the second sees a clean
        MembershipError after refreshing, not silent corruption."""
        system = make_system("occ4", capacity=4)
        admin1 = ConcurrentAdministrator(system.admin)
        admin2 = ConcurrentAdministrator(make_second_admin(system, "occ4b"))
        admin1.create_group("g", ["a", "b", "c"])
        admin2.refresh("g")
        admin1.remove_user("g", "b")
        with pytest.raises(MembershipError):
            admin2.remove_user("g", "b")

    def test_retry_budget_exhausted(self):
        system = make_system("occ5", capacity=4)
        admin = ConcurrentAdministrator(system.admin, max_retries=2)
        admin.create_group("g", ["a", "b"])

        # An adversarial interleaving: something bumps the descriptor
        # version between every resync and retry (the conflict loop
        # refreshes cached groups through sync_group).
        original_sync = system.admin.sync_group

        def sync_and_race(group_id):
            changed = original_sync(group_id)
            # Simulate a competing admin racing ahead again.
            from repro.core.metadata import descriptor_path
            obj = system.cloud.get(descriptor_path(group_id))
            system.cloud.put(descriptor_path(group_id), obj.data)
            return changed

        system.admin.sync_group = sync_and_race
        # Make the cached view stale before the first attempt, too.
        from repro.core.metadata import descriptor_path
        obj = system.cloud.get(descriptor_path("g"))
        system.cloud.put(descriptor_path("g"), obj.data)
        with pytest.raises(ConflictError, match="kept conflicting"):
            admin.add_user("g", "c")
