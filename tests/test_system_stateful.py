"""Stateful model-based test of the full access-control system.

A hypothesis rule-based state machine drives random interleavings of
administrator operations (add / remove / rekey / repartition) and client
synchronisations against a reference model (a set of members), asserting
after every step:

* every current member's client derives the same group key;
* every revoked/never-added identity is locked out;
* the plaintext group key never appears in any cloud object;
* the admin's partition table matches the reference membership.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.errors import RevokedError
from tests.conftest import make_system

USER_POOL = [f"user{i}" for i in range(14)]


class AccessControlMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = make_system("stateful", capacity=3)
        self.members = set()
        self.clients = {}
        self.ever_member = set()

    @initialize()
    def create_group(self):
        self.system.admin.create_group("g", ["user0"])
        self.members = {"user0"}
        self.ever_member = {"user0"}

    # -- rules ---------------------------------------------------------------

    @rule(index=st.integers(min_value=0, max_value=len(USER_POOL) - 1))
    def add_user(self, index):
        user = USER_POOL[index]
        if user in self.members:
            return
        self.system.admin.add_user("g", user)
        self.members.add(user)
        self.ever_member.add(user)

    @rule(index=st.integers(min_value=0, max_value=len(USER_POOL) - 1))
    def remove_user(self, index):
        user = USER_POOL[index]
        if user not in self.members or len(self.members) == 1:
            return
        self.system.admin.remove_user("g", user)
        self.members.discard(user)

    @rule()
    def rekey(self):
        self.system.admin.rekey("g")

    @rule()
    def repartition(self):
        self.system.admin.repartition("g")

    # -- invariants -----------------------------------------------------------

    @invariant()
    def table_matches_model(self):
        state = self.system.admin.group_state("g")
        assert set(state.table.all_members()) == self.members

    @invariant()
    def members_share_one_key_and_outsiders_fail(self):
        # Sample up to three members and one outsider per step (checking
        # everyone every step would be O(n³) over the run).
        sample = sorted(self.members)[:3]
        keys = set()
        for user in sample:
            client = self._client(user)
            client.sync()
            keys.add(client.current_group_key())
        assert len(keys) <= 1
        revoked = sorted(self.ever_member - self.members)
        if revoked:
            client = self._client(revoked[0])
            client.sync()
            try:
                derived = client.current_group_key()
            except RevokedError:
                derived = None
            if keys:
                assert derived != next(iter(keys))

    @invariant()
    def cloud_never_stores_plaintext_key(self):
        if not self.members:
            return
        client = self._client(sorted(self.members)[0])
        client.sync()
        group_key = client.current_group_key()
        for obj in self.system.cloud.adversary_view():
            assert group_key not in obj.data

    def _client(self, user):
        if user not in self.clients:
            self.clients[user] = self.system.make_client("g", user)
        return self.clients[user]


TestAccessControlMachine = AccessControlMachine.TestCase
TestAccessControlMachine.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
