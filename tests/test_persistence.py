"""Persistence and recovery tests: PK serialization, deterministic device
identity, admin group recovery from the cloud."""

import pytest

from repro import ibbe
from repro.crypto.rng import DeterministicRng
from repro.enclave_app import IbbeEnclave
from repro.errors import SchemeError
from repro.sgx.device import SgxDevice
from tests.conftest import make_system


class TestPublicKeySerialization:
    def test_roundtrip(self, group, ibbe_system):
        _, pk = ibbe_system
        decoded = ibbe.IbbePublicKey.decode(pk.encode(), group)
        assert decoded.m == pk.m
        assert decoded.w == pk.w
        assert decoded.v == pk.v
        assert decoded.h_powers == pk.h_powers

    def test_roundtrip_reconstructs_group(self, ibbe_system):
        _, pk = ibbe_system
        decoded = ibbe.IbbePublicKey.decode(pk.encode())  # group from preset
        assert decoded.group.q == pk.group.q

    def test_decoded_key_usable(self, group, ibbe_system, user_keys, rng):
        msk, pk = ibbe_system
        decoded = ibbe.IbbePublicKey.decode(pk.encode(), group)
        members = ["user0", "user1"]
        bk, ct = ibbe.encrypt_pk(decoded, members, rng)
        assert ibbe.decrypt(decoded, user_keys["user0"], members, ct) == bk

    def test_wrong_group_rejected(self, ibbe_system):
        from repro.pairing import PairingGroup, generate_params
        _, pk = ibbe_system
        other = PairingGroup(
            generate_params(32, 64, DeterministicRng("other-group"))
        )
        with pytest.raises(SchemeError):
            ibbe.IbbePublicKey.decode(pk.encode(), other)

    def test_garbage_rejected(self, group):
        with pytest.raises(Exception):
            ibbe.IbbePublicKey.decode(b"junk", group)


class TestDeterministicDevice:
    def test_same_secret_same_platform(self):
        a = SgxDevice(device_secret=b"s" * 32)
        b = SgxDevice(device_secret=b"s" * 32)
        assert a.device_id == b.device_id
        assert a.sealing_root_key() == b.sealing_root_key()
        assert (a.attestation_public_key.encode()
                == b.attestation_public_key.encode())

    def test_different_secret_different_platform(self):
        a = SgxDevice(device_secret=b"s" * 32)
        b = SgxDevice(device_secret=b"t" * 32)
        assert a.device_id != b.device_id
        assert a.sealing_root_key() != b.sealing_root_key()

    def test_sealed_data_survives_restart(self, group):
        """The property the CLI relies on: a new process (new objects) on
        the same platform can unseal old blobs."""
        secret = b"fuses" + bytes(27)
        device_a = SgxDevice(device_secret=secret)
        enclave_a = IbbeEnclave.load(device_a, {"pairing_group": group})
        pk, sealed_msk = enclave_a.call("setup_system", 4)
        usk = enclave_a.call("extract_user_key_raw", "alice")

        device_b = SgxDevice(device_secret=secret)  # "after reboot"
        enclave_b = IbbeEnclave.load(device_b, {"pairing_group": group})
        enclave_b.call("restore_system", sealed_msk, pk)
        assert enclave_b.call("extract_user_key_raw", "alice") == usk


class TestAdminRecovery:
    def test_load_group_from_cloud(self):
        system = make_system("recovery", capacity=3)
        members = [f"u{i}" for i in range(7)]
        system.admin.create_group("g", members)
        system.admin.remove_user("g", "u2")
        original = system.admin.group_state("g")

        # A fresh administrator object (same enclave + keys) recovers the
        # group purely from cloud metadata.
        from repro.core.admin import GroupAdministrator
        fresh = GroupAdministrator(
            enclave=system.enclave,
            cloud=system.cloud,
            signing_key=system.admin._signing_key,
            partition_capacity=3,
            rng=DeterministicRng("recovered"),
        )
        recovered = fresh.load_group_from_cloud("g")
        assert set(recovered.table.all_members()) == set(
            original.table.all_members()
        )
        assert recovered.table.partition_ids == original.table.partition_ids
        assert recovered.epoch == original.epoch
        assert recovered.sealed_group_key == original.sealed_group_key

    def test_recovered_admin_can_operate(self):
        system = make_system("recovery2", capacity=3)
        system.admin.create_group("g", ["a", "b", "c", "d"])
        client = system.make_client("g", "a")
        client.sync()
        gk = client.current_group_key()

        from repro.core.admin import GroupAdministrator
        fresh = GroupAdministrator(
            enclave=system.enclave,
            cloud=system.cloud,
            signing_key=system.admin._signing_key,
            partition_capacity=3,
            rng=DeterministicRng("recovered2"),
        )
        fresh.load_group_from_cloud("g")
        fresh.remove_user("g", "b")
        client.sync()
        assert client.current_group_key() != gk

    def test_recovery_rejects_foreign_signatures(self):
        system = make_system("recovery3", capacity=3)
        system.admin.create_group("g", ["a", "b"])
        from repro.core.admin import GroupAdministrator
        from repro.crypto import ecdsa
        stranger = GroupAdministrator(
            enclave=system.enclave,
            cloud=system.cloud,
            signing_key=ecdsa.generate_keypair(DeterministicRng("x")),
            partition_capacity=3,
            rng=DeterministicRng("x2"),
        )
        from repro.errors import AuthenticationError
        with pytest.raises(AuthenticationError):
            stranger.load_group_from_cloud("g")
