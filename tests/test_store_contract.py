"""Conformance suite for the ``CloudStoreProtocol`` contract.

One set of behavioural assertions, run against every store the package
ships: the in-memory reference, the crash-consistent file store, the
fault-injection decorator (with an empty plan), and the network client
talking to a real :class:`~repro.net.StoreServer`.  Anything that
claims to implement :class:`~repro.cloud.CloudStoreProtocol` must pass
unchanged — that equivalence is exactly what lets the administrator,
clients, chaos harness and benchmarks run against any of them.
"""

import pytest

from repro.cloud import (
    CloudBatch,
    CloudStore,
    CloudStoreProtocol,
    FileCloudStore,
    INSPECTION_METHODS,
    ROUND_TRIP_METHODS,
)
from repro.cloud.protocol import contract_methods
from repro.errors import ConflictError, NotFoundError, StorageError
from repro.faults import FaultInjector, FaultPlan, FaultyCloudStore
from repro.net import RemoteCloudStore, ServerThread

BACKENDS = ("memory", "file", "faulty", "remote")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    """One store per backend; remote gets a live server over the
    in-memory reference, torn down after the test."""
    if request.param == "memory":
        yield CloudStore()
    elif request.param == "file":
        yield FileCloudStore(tmp_path / "store")
    elif request.param == "faulty":
        injector = FaultInjector(FaultPlan.disabled())
        yield FaultyCloudStore(CloudStore(), injector)
    else:
        inner = CloudStore()
        server = ServerThread(inner)
        url = server.start()
        remote = RemoteCloudStore(url)
        yield remote
        remote.close()
        server.stop()


def test_implements_protocol(store):
    assert isinstance(store, CloudStoreProtocol)
    for name in contract_methods():
        assert callable(getattr(store, name)), name


def test_contract_method_partition():
    # Every contract method is classified exactly once.
    assert not set(ROUND_TRIP_METHODS) & set(INSPECTION_METHODS)
    assert set(contract_methods()) == (
        set(ROUND_TRIP_METHODS) | set(INSPECTION_METHODS))


def test_put_get_roundtrip_and_versions(store):
    assert store.put("/g/a", b"one") == 1
    assert store.put("/g/a", b"two") == 2
    obj = store.get("/g/a")
    assert (obj.path, obj.data, obj.version) == ("/g/a", b"two", 2)


def test_path_normalization(store):
    store.put("g//a", b"x")
    assert store.get("/g/a").data == b"x"
    assert store.exists("g/a")


def test_invalid_path_rejected(store):
    with pytest.raises(StorageError):
        store.put("/g/../escape", b"x")
    with pytest.raises(StorageError):
        store.get("")


def test_conditional_put_conflicts(store):
    store.put("/g/a", b"one")
    with pytest.raises(ConflictError):
        store.put("/g/a", b"two", expected_version=0)
    assert store.get("/g/a").data == b"one"
    assert store.put("/g/a", b"two", expected_version=1) == 2


def test_get_missing_raises_not_found(store):
    with pytest.raises(NotFoundError):
        store.get("/nope")


def test_exists_and_delete(store):
    store.put("/g/a", b"x")
    assert store.exists("/g/a")
    store.delete("/g/a")
    assert not store.exists("/g/a")
    with pytest.raises(NotFoundError):
        store.delete("/g/a")


def test_get_many_skips_missing(store):
    store.put("/g/a", b"aa")
    store.put("/g/b", b"bb")
    found = store.get_many(["/g/a", "/g/missing", "g//b"])
    assert sorted(found) == ["/g/a", "/g/b"]
    assert found["/g/b"].data == b"bb"


def test_commit_atomic_success(store):
    batch = (CloudBatch()
             .put("/g/a", b"one")
             .put("/g/b", b"two")
             .delete("/g/missing", ignore_missing=True))
    versions = store.commit(batch)
    assert versions == {"/g/a": 1, "/g/b": 1}
    assert store.get("/g/a").data == b"one"


def test_commit_rolls_back_on_conflict(store):
    store.put("/g/a", b"one")
    batch = (CloudBatch()
             .put("/g/b", b"two")
             .put("/g/a", b"clash", expected_version=99))
    with pytest.raises(ConflictError):
        store.commit(batch)
    # Nothing from the failed batch landed.
    assert not store.exists("/g/b")
    assert store.get("/g/a").data == b"one"


def test_poll_dir_orders_events_and_advances_cursor(store):
    events, cursor = store.poll_dir("/g")
    assert events == []
    store.put("/g/a", b"one")
    store.put("/g/b", b"two")
    store.delete("/g/a")
    events, cursor = store.poll_dir("/g", cursor)
    assert [(e.path, e.kind) for e in events] == [
        ("/g/a", "put"), ("/g/b", "put"), ("/g/a", "delete")]
    assert [e.sequence for e in events] == sorted(e.sequence
                                                 for e in events)
    assert cursor == store.head_sequence()
    # Nothing new: empty delta, cursor stable.
    events, again = store.poll_dir("/g", cursor)
    assert events == [] and again == cursor


def test_poll_dir_is_directory_scoped(store):
    store.put("/g/a", b"one")
    store.put("/other/x", b"zzz")
    events, _ = store.poll_dir("/g")
    assert {e.path for e in events} == {"/g/a"}


def test_list_dir_immediate_children(store):
    store.put("/g/a", b"1")
    store.put("/g/sub/b", b"2")
    store.put("/h/c", b"3")
    assert store.list_dir("/g") == ["/g/a", "/g/sub"]


def test_compact_preserves_stale_cursor_view(store):
    store.put("/g/a", b"one")
    store.put("/g/b", b"two")
    store.delete("/g/a")
    head = store.head_sequence()
    truncated = store.compact()
    assert truncated == 3
    assert store.snapshot_horizon() == head
    assert store.head_sequence() == head
    # A watcher from sequence zero still learns the full outcome,
    # including the tombstone for the deleted object.
    events, cursor = store.poll_dir("/g", 0)
    outcome = {e.path: e.kind for e in events}
    assert outcome == {"/g/a": "delete", "/g/b": "put"}
    assert cursor == head
    # Double compaction is a no-op.
    assert store.compact() == 0


def test_inspection_surface(store):
    store.put("/g/a", b"12345")
    store.put("/h/b", b"67")
    assert store.total_stored_bytes() == 7
    assert store.total_stored_bytes("/g") == 5
    view = {obj.path: obj.data for obj in store.adversary_view()}
    assert view == {"/g/a": b"12345", "/h/b": b"67"}


def test_metrics_account_requests_and_bytes(store):
    store.put("/g/a", b"x" * 10)
    store.get("/g/a")
    assert store.metrics.requests >= 2
    assert store.metrics.bytes_in >= 10
    assert store.metrics.bytes_out >= 10
