"""Smoke tests: every example script must run to completion.

Examples are a deliverable; this keeps them from silently rotting as the
library evolves.  Each is executed in-process (import + main()) with its
module namespace isolated.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # trace_replay accepts an optional scale argument; pin a tiny one so
    # the suite stays fast.
    argv = [str(EXAMPLES_DIR / script)]
    if script == "trace_replay.py":
        argv.append("0.002")
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    assert "BUG" not in out


def test_examples_exist():
    assert len(EXAMPLES) >= 5
