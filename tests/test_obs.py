"""Telemetry subsystem (repro.obs): spans, metrics, exporters, and the
integration guarantees the rest of the package relies on — span
nesting/self-time invariants, the disabled no-op fast path, registry
reset semantics, the legacy-accessor shims, and the pipeline-mode
boundary footprint read through the new dotted metrics."""

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    Counter,
    CounterField,
    Histogram,
    MetricRegistry,
    MetricSource,
    Span,
    Tracer,
    aggregate_spans,
    breakdown_table,
    format_metrics,
    merge_snapshots,
    spans_to_jsonl,
    telemetry_snapshot,
    write_jsonl,
)
from tests.conftest import make_system


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_parent_child(self):
        tr = Tracer(enabled=True)
        with tr.span("outer.a") as outer:
            with tr.span("inner.b") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1
        assert outer.parent_id is None
        # Completion order: children finish first.
        assert [s.name for s in tr.spans()] == ["inner.b", "outer.a"]

    def test_self_time_partitions_duration(self):
        tr = Tracer(enabled=True)
        with tr.span("outer.a") as outer:
            with tr.span("inner.b"):
                pass
            with tr.span("inner.c"):
                pass
        children = sum(s.duration for s in tr.spans()
                       if s.name.startswith("inner"))
        assert outer.children_seconds == pytest.approx(children)
        assert outer.self_seconds == pytest.approx(
            outer.duration - children
        )
        assert outer.self_seconds >= 0.0
        # Parent duration covers its children.
        assert outer.duration >= children

    def test_category_defaults_to_name_prefix(self):
        tr = Tracer(enabled=True)
        with tr.span("cloud.put") as a:
            pass
        with tr.span("cloud.put", category="io") as b:
            pass
        assert a.category == "cloud"
        assert b.category == "io"

    def test_exception_safety(self):
        tr = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tr.span("outer.a"):
                with tr.span("inner.b"):
                    raise ValueError("boom")
        # Both spans closed, stack restored, errors recorded.
        assert tr._stack == []
        by_name = {s.name: s for s in tr.spans()}
        assert by_name["inner.b"].error == "ValueError"
        assert by_name["outer.a"].error == "ValueError"
        # The tracer still works afterwards.
        with tr.span("after.c"):
            pass
        assert len(tr) == 3

    def test_disabled_returns_null_singleton(self):
        tr = Tracer(enabled=False)
        a = tr.span("x.y", attr=1)
        b = tr.span("z.w")
        assert a is NULL_SPAN and b is NULL_SPAN
        with a as s:
            s.set(more=2)
        assert len(tr) == 0

    def test_force_span_times_but_does_not_record(self):
        tr = Tracer(enabled=False)
        span = tr.span("replay.op", force=True)
        assert isinstance(span, Span)
        with span:
            pass
        assert span.duration > 0.0
        assert len(tr) == 0
        tr.enable()
        with tr.span("replay.op", force=True):
            pass
        assert len(tr) == 1

    def test_buffer_bound_and_dropped(self):
        tr = Tracer(enabled=True, max_spans=3)
        for _ in range(5):
            with tr.span("a.b"):
                pass
        assert len(tr) == 3
        assert tr.dropped == 2
        tr.reset()
        assert len(tr) == 0 and tr.dropped == 0
        # reset leaves the enabled flag alone.
        assert tr.enabled

    def test_global_enable_disable_contextmanager(self):
        was = obs.tracer().enabled
        obs.disable()
        try:
            with obs.enabled() as tr:
                assert tr is obs.tracer()
                assert tr.enabled
                with obs.span("test.x"):
                    pass
            assert not obs.tracer().enabled
            assert any(s.name == "test.x" for s in obs.tracer().spans())
        finally:
            obs.tracer().reset()
            if was:
                obs.enable()

    def test_global_span_disabled_is_null(self):
        was = obs.tracer().enabled
        obs.disable()
        try:
            assert obs.span("test.noop") is NULL_SPAN
        finally:
            if was:
                obs.enable()


class TestNullSpanFastPath:
    """Regression: the disabled path must stay allocation-free.

    The hot paths (pairing, ecall dispatch, cloud store) call ``span()``
    unconditionally; if a disabled call ever constructed a real Span or
    touched tracer state, telemetry-off runs would pay for tracing they
    never asked for."""

    def test_disabled_span_allocates_nothing(self, monkeypatch):
        tr = Tracer(enabled=False)

        def _boom(*args, **kwargs):
            raise AssertionError("disabled span() constructed a Span")

        monkeypatch.setattr(Span, "__init__", _boom)
        for _ in range(100):
            assert tr.span("hot.path") is NULL_SPAN

    def test_disabled_span_touches_no_tracer_state(self):
        tr = Tracer(enabled=False)
        for _ in range(50):
            with tr.span("hot.path"):
                pass
        assert len(tr) == 0
        assert tr.dropped == 0
        assert tr.current_span() is None
        tr.enable()
        with tr.span("first.real") as real:
            pass
        # Disabled calls consumed no span ids: the first recorded span
        # still gets id 1.
        assert real.span_id == 1

    def test_global_disabled_path_is_singleton(self, monkeypatch):
        was = obs.tracer().enabled
        obs.disable()

        def _boom(*args, **kwargs):
            raise AssertionError("disabled global span() allocated")

        monkeypatch.setattr(Span, "__init__", _boom)
        try:
            assert obs.span("a.b") is obs.span("c.d") is NULL_SPAN
        finally:
            if was:
                obs.enable()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_registry_counters_and_reset(self):
        reg = MetricRegistry()
        c = reg.counter("a.b")
        assert reg.counter("a.b") is c  # idempotent
        c.add()
        c.add(4)
        assert reg.snapshot() == {"a.b": 5}
        reg.reset()
        assert reg.snapshot() == {"a.b": 0}

    def test_registry_histogram_snapshot(self):
        reg = MetricRegistry()
        h = reg.histogram("a.lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["a.lat.count"] == 3
        assert snap["a.lat.total"] == pytest.approx(6.0)
        assert snap["a.lat.min"] == 1.0
        assert snap["a.lat.max"] == 3.0
        assert snap["a.lat.mean"] == pytest.approx(2.0)
        reg.reset()
        assert reg.snapshot()["a.lat.count"] == 0

    def test_histogram_quantiles_in_snapshot(self):
        reg = MetricRegistry()
        h = reg.histogram("a.lat")
        for v in range(1, 101):  # 1..100, well under the reservoir size
            h.observe(float(v))
        snap = reg.snapshot()
        assert snap["a.lat.p50"] == pytest.approx(50.5)
        assert snap["a.lat.p95"] == pytest.approx(95.05)
        assert snap["a.lat.p99"] == pytest.approx(99.01)

    def test_histogram_reservoir_is_bounded(self):
        from repro.obs.metrics import Histogram

        h = Histogram("a.lat")
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h.samples()) == h._reservoir_size
        # The sampled median still lands near the true one.
        assert 2_000 < h.quantile(0.5) < 8_000

    def test_histogram_reservoir_is_deterministic(self):
        from repro.obs.metrics import Histogram

        def fill(name):
            h = Histogram(name)
            for v in range(5000):
                h.observe(float(v))
            return h.samples()

        assert fill("same.name") == fill("same.name")

    def test_quantile_from_samples(self):
        from repro.obs.metrics import quantile_from_samples

        assert quantile_from_samples([], 0.5) == 0.0
        assert quantile_from_samples([7.0], 0.95) == 7.0
        assert quantile_from_samples([1.0, 2.0, 3.0, 4.0], 0.5) \
            == pytest.approx(2.5)
        assert quantile_from_samples([4.0, 1.0, 3.0, 2.0], 1.0) == 4.0
        assert quantile_from_samples([4.0, 1.0, 3.0, 2.0], 0.0) == 1.0

    def test_gauge_survives_reset(self):
        reg = MetricRegistry()
        state = {"n": 7}
        reg.gauge("a.size", lambda: state["n"])
        assert reg.snapshot()["a.size"] == 7
        reg.reset()
        state["n"] = 9
        assert reg.snapshot()["a.size"] == 9

    def test_prefix(self):
        reg = MetricRegistry(prefix="sgx")
        reg.counter("crossings").add()
        assert reg.snapshot() == {"sgx.crossings": 1}
        assert "sgx.crossings" in reg

    def test_registry_is_metric_source(self):
        assert isinstance(MetricRegistry(), MetricSource)

    def test_counter_field_shim(self):
        class Shim:
            requests = CounterField("x.requests")

            def __init__(self):
                self.registry = MetricRegistry()

        shim = Shim()
        assert shim.requests == 0
        shim.requests += 3
        assert shim.requests == 3
        assert shim.registry.snapshot()["x.requests"] == 3
        shim.requests = 0
        assert shim.registry.snapshot()["x.requests"] == 0

    def test_merge_snapshots_later_wins(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("k").set(1)
        a.counter("only.a").set(5)
        b.counter("k").set(2)
        merged = merge_snapshots([a, b])
        assert merged == {"k": 2, "only.a": 5}


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

def _make_trace():
    tr = Tracer(enabled=True)
    with tr.span("sgx.ecall", ecall="create_group"):
        with tr.span("crypto.pair"):
            pass
    with pytest.raises(RuntimeError):
        with tr.span("cloud.put"):
            raise RuntimeError("nope")
    return tr


class TestExporters:
    def test_jsonl_roundtrip(self, tmp_path):
        tr = _make_trace()
        lines = spans_to_jsonl(tr.spans()).strip().split("\n")
        rows = [json.loads(line) for line in lines]
        assert [r["name"] for r in rows] == \
            ["crypto.pair", "sgx.ecall", "cloud.put"]
        ecall = next(r for r in rows if r["name"] == "sgx.ecall")
        assert ecall["attrs"] == {"ecall": "create_group"}
        assert ecall["self"] <= ecall["duration"]
        assert next(r for r in rows if r["name"] == "cloud.put")["error"] \
            == "RuntimeError"

        path = tmp_path / "spans.jsonl"
        assert write_jsonl(tr.spans(), path) == 3
        assert path.read_text("utf-8").strip().split("\n") == lines

    def test_aggregate_spans(self):
        tr = _make_trace()
        agg = aggregate_spans(tr.spans())
        assert set(agg["categories"]) == {"sgx", "crypto", "cloud"}
        assert agg["categories"]["sgx"]["count"] == 1
        assert agg["errors"] == 1
        # Self times sum to total wall-clock across the tree.
        roots = [s for s in tr.spans() if s.parent_id is None]
        total_self = sum(c["self_s"] for c in agg["categories"].values())
        assert total_self == pytest.approx(
            sum(s.duration for s in roots)
        )

    def test_breakdown_table(self):
        tr = _make_trace()
        lines = breakdown_table(tr.spans())
        text = "\n".join(lines)
        assert "category" in lines[0]
        for cat in ("sgx", "crypto", "cloud"):
            assert cat in text
        assert "closed on an exception" in text  # 1 failed span reported
        assert breakdown_table([]) == \
            ["(no spans recorded — is telemetry enabled?)"]

    def test_telemetry_snapshot_shape(self):
        reg = MetricRegistry()
        reg.counter("a.b").add()
        tr = _make_trace()
        snap = telemetry_snapshot([reg], tracer=tr)
        assert snap["metrics"]["a.b"] == 1
        # The tracer's own health registry rides along: span-loss and
        # buffer occupancy are always visible in the snapshot.
        assert snap["metrics"]["obs.spans.dropped"] == 0
        assert snap["metrics"]["obs.spans.buffered"] == 3
        assert snap["trace"]["enabled"] is True
        assert snap["trace"]["spans"] == 3
        assert snap["trace"]["errors"] == 1

    def test_format_metrics(self):
        lines = format_metrics({"b.y": 2, "a.x": 1})
        assert lines[0].startswith("a.x")
        assert lines[1].startswith("b.y")

    def test_breakdown_table_has_quantile_columns(self):
        tr = _make_trace()
        lines = breakdown_table(tr.spans())
        assert "p50" in lines[0] and "p95" in lines[0]

    def test_prometheus_exposition(self):
        from repro.obs import metrics_to_prometheus

        metrics = {
            "sgx.crossings": 5,
            "par.task.seconds.count": 4,
            "par.task.seconds.total": 2.0,
            "par.task.seconds.mean": 0.5,
            "par.task.seconds.min": 0.25,
            "par.task.seconds.max": 1.0,
            "par.task.seconds.p50": 0.5,
            "par.task.seconds.p95": 0.9,
            "par.task.seconds.p99": 0.99,
            # A lone .count counter is NOT a histogram summary.
            "replay.decrypt.count": 3,
        }
        text = metrics_to_prometheus(metrics)
        assert "# TYPE repro_sgx_crossings gauge" in text
        assert "repro_sgx_crossings 5" in text
        assert "# TYPE repro_par_task_seconds summary" in text
        assert 'repro_par_task_seconds{quantile="0.5"} 0.5' in text
        assert 'repro_par_task_seconds{quantile="0.95"} 0.9' in text
        assert "repro_par_task_seconds_sum 2" in text
        assert "repro_par_task_seconds_count 4" in text
        assert "repro_par_task_seconds_max 1" in text
        assert "repro_replay_decrypt_count 3" in text
        assert "repro_replay_decrypt summary" not in text
        assert text.endswith("\n")

    def test_chrome_trace_object_format(self):
        from repro.obs import spans_to_chrome_trace

        tr = _make_trace()
        trace = spans_to_chrome_trace(tr.spans(), process_name="demo")
        events = trace["traceEvents"]
        span_events = [e for e in events if e["ph"] == "X"]
        assert len(span_events) == len(tr.spans())
        for event in span_events:
            assert event["dur"] >= 1  # minimum 1 µs, viewers need > 0
            assert "self_us" in event["args"]
        process_meta = next(e for e in events
                            if e["ph"] == "M"
                            and e["name"] == "process_name")
        assert process_meta["args"]["name"] == "demo"
        # The failed span carries its error class in args.
        assert any(e["args"].get("error") for e in span_events)


class TestExporterEdgeCases:
    def test_prometheus_empty_registry(self):
        from repro.obs import metrics_to_prometheus

        text = metrics_to_prometheus({})
        assert text == "\n"
        registry = MetricRegistry()
        assert metrics_to_prometheus(registry.snapshot()) == "\n"

    def test_histogram_quantiles_exact_below_reservoir(self):
        """With fewer samples than the reservoir holds, quantiles are
        computed over *all* samples — no sampling error."""
        h = Histogram("exact")
        for v in range(1, 101):    # 100 < RESERVOIR_SIZE
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["exact.count"] == 100
        assert snap["exact.min"] == 1.0 and snap["exact.max"] == 100.0
        assert abs(snap["exact.p50"] - 50.5) < 1.0
        assert snap["exact.p95"] >= 95.0
        assert snap["exact.p99"] >= 99.0

    def test_histogram_merge_is_deterministic(self):
        """Merging the same parts in the same order gives byte-identical
        snapshots: the reservoir's RNG is keyed by name, not time."""
        def build():
            target = Histogram("merge.target")
            for part_index in range(3):
                part = Histogram(f"part{part_index}")
                for v in range(500):
                    part.observe(float(v + 1000 * part_index))
                target.merge(part)
            return target.snapshot()

        assert build() == build()

    def test_histogram_merge_aggregates_under_permutation(self):
        """Count/total/min/max are order-independent even when the
        sampled quantiles differ across merge orders."""
        import itertools as it

        parts = []
        for i in range(3):
            part = Histogram(f"perm{i}")
            for v in range(400):
                part.observe(float(v + 1000 * i))
            parts.append(part)
        aggregates = set()
        for order in it.permutations(range(3)):
            target = Histogram("perm.target")
            for i in order:
                target.merge(parts[i])
            snap = target.snapshot()
            aggregates.add((snap["perm.target.count"],
                            snap["perm.target.total"],
                            snap["perm.target.min"],
                            snap["perm.target.max"]))
        assert len(aggregates) == 1
        assert aggregates.pop() == (1200, sum(range(400)) * 3.0
                                    + 400 * (1000.0 + 2000.0),
                                    0.0, 2399.0)

    def test_chrome_trace_connection_lanes(self):
        """Negative tids render as conn-N lanes, positive as worker-N."""
        from repro.obs import spans_to_chrome_trace

        tr = Tracer(enabled=True)
        with tr.span("net.rpc.store.get", "net"):
            pass
        spans = tr.spans()
        spans[0].tid = -2
        extra = Tracer(enabled=True)
        with extra.span("cloud.put", "cloud"):
            pass
        worker = extra.spans()[0]
        worker.tid = 41
        trace = spans_to_chrome_trace(spans + [worker])
        lanes = {e["tid"]: e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes[-2] == "conn-2"
        assert lanes[41] == "worker-41"


class TestSloWindow:
    def test_counts_and_quantiles(self):
        from repro.obs import SloWindow

        w = SloWindow("store.get", size=8)
        for ms in (1.0, 2.0, 3.0, 4.0):
            w.observe(ms)
        w.observe(100.0, ok=False)
        snap = w.snapshot()
        assert snap["count"] == 5 and snap["errors"] == 1
        assert snap["window"] == 5
        assert snap["error_rate"] == pytest.approx(0.2)
        assert snap["max_ms"] == 100.0
        assert snap["p50_ms"] == pytest.approx(3.0)

    def test_window_slides_but_lifetime_counts_do_not(self):
        from repro.obs import SloWindow

        w = SloWindow("m", size=4)
        for i in range(10):
            w.observe(float(i), ok=(i % 2 == 0))
        snap = w.snapshot()
        assert snap["count"] == 10 and snap["errors"] == 5
        assert snap["window"] == 4
        # Only the last 4 latencies are in the window: 6,7,8,9.
        assert snap["max_ms"] == 9.0 and snap["p50_ms"] >= 6.0

    def test_reset(self):
        from repro.obs import SloWindow

        w = SloWindow("m")
        w.observe(5.0, ok=False)
        w.reset()
        snap = w.snapshot()
        assert snap["count"] == 0 and snap["window"] == 0
        assert snap["error_rate"] == 0.0


# ---------------------------------------------------------------------------
# Integration: the deployment's metric surfaces
# ---------------------------------------------------------------------------

class TestSystemTelemetry:
    def test_pipeline_mutation_is_one_crossing_one_commit(self):
        """Regression: in pipeline mode an admin mutation costs exactly
        one enclave crossing and one cloud commit — asserted through the
        new dotted metrics rather than the legacy attributes."""
        system = make_system("obs-pipeline", capacity=4)
        system.admin.create_group("g", ["a", "b", "c"])
        before = system.telemetry()["metrics"]
        system.admin.add_user("g", "d")
        after = system.telemetry()["metrics"]
        assert after["sgx.crossings"] - before["sgx.crossings"] == 1
        assert after["cloud.batch_commits"] - before["cloud.batch_commits"] \
            == 1
        assert after["admin.plans_committed"] \
            - before["admin.plans_committed"] == 1

    def test_legacy_accessors_match_dotted_snapshot(self):
        system = make_system("obs-shims", capacity=4)
        system.admin.create_group("g", ["a", "b", "c", "d", "e"])
        client = system.make_client("g", "a")
        client.sync()
        client.current_group_key()
        metrics = system.telemetry()["metrics"]
        # Old attribute surfaces and the consolidated registry agree.
        assert system.enclave.meter.crossings == metrics["sgx.crossings"]
        assert system.enclave.meter.ecalls == metrics["sgx.ecalls"]
        assert system.cloud.metrics.requests == metrics["cloud.requests"]
        assert system.cloud.metrics.bytes_in == metrics["cloud.bytes_in"]
        assert system.admin.metrics.users_added \
            == metrics["admin.users_added"]
        assert client.decrypt_count == metrics["client.decrypts"]
        # Legacy flat snapshots still work.
        assert system.cloud.metrics.snapshot()["requests"] \
            == metrics["cloud.requests"]
        assert system.enclave.meter.snapshot()["crossings"] \
            == metrics["sgx.crossings"]

    def test_estimated_cycles_gauge(self):
        system = make_system("obs-cycles", capacity=4)
        system.admin.create_group("g", ["a"])
        metrics = system.telemetry()["metrics"]
        assert metrics["sgx.estimated_cycles"] \
            == metrics["sgx.crossings"] * 8_000
        assert system.enclave.meter.estimated_cycles \
            == metrics["sgx.estimated_cycles"]

    def test_reset_metrics(self):
        system = make_system("obs-reset", capacity=4)
        system.admin.create_group("g", ["a", "b"])
        assert system.telemetry()["metrics"]["sgx.crossings"] > 0
        system.reset_metrics()
        metrics = system.telemetry()["metrics"]
        assert metrics["sgx.crossings"] == 0
        assert metrics["cloud.requests"] == 0
        assert metrics["admin.groups_created"] == 0
        # Gauges derive from live state, not counters: the cache still
        # holds the group after a metric reset.
        assert metrics["admin.cached_groups"] == 1

    def test_spans_cover_the_hot_boundaries(self):
        system = make_system("obs-spans", capacity=4)
        with obs.enabled() as tr:
            tr.reset()
            system.admin.create_group("g", ["a", "b", "c"])
            client = system.make_client("g", "a")
            client.sync()
            client.current_group_key()
            categories = {s.category for s in tr.spans()}
            names = {s.name for s in tr.spans()}
        tr.reset()
        assert {"sgx", "cloud", "crypto", "admin", "client"} <= categories
        assert "sgx.batch" in names or "sgx.ecall" in names
        assert "cloud.commit" in names
        assert "admin.plan" in names
        assert "client.decrypt" in names

    def test_sequential_mode_pays_per_object(self):
        system = make_system("obs-seq", capacity=2, pipeline=False,
                             auto_repartition=False)
        system.admin.create_group("g", ["a", "b", "c", "d"])
        before = system.telemetry()["metrics"]
        system.admin.rekey("g")
        after = system.telemetry()["metrics"]
        # Two partitions + descriptor + sealed key: >1 request, 0 commits.
        assert after["cloud.requests"] - before["cloud.requests"] > 1
        assert after["cloud.batch_commits"] == before["cloud.batch_commits"]
