"""The stdlib sampling profiler: span attribution, output formats."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.profile import DEFAULT_HZ, SamplingProfiler, _frame_functions
from repro.obs.spans import Tracer


def _burn(seconds: float) -> int:
    """A busy loop the sampler can catch in the act."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(range(50))
    return acc


class TestSamplingProfiler:
    def test_samples_attribute_to_active_span(self):
        tr = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=250, tracer=tr)
        with profiler:
            with tr.span("hot.section"):
                _burn(0.25)
        assert profiler.sample_count > 0
        span_names = {span for span, _ in profiler.counts()}
        assert "hot.section" in span_names
        # Per-span counters mirror the attribution.
        snapshot = profiler.registry.snapshot()
        assert snapshot["profile.span.hot.section"] > 0
        assert snapshot["profile.samples"] == profiler.sample_count
        assert snapshot["profile.hz"] == 250

    def test_samples_outside_spans_fall_back(self):
        profiler = SamplingProfiler(hz=250, tracer=Tracer(enabled=True))
        with profiler:
            _burn(0.2)
        assert profiler.sample_count > 0
        assert {span for span, _ in profiler.counts()} == {"(no span)"}

    def test_collapsed_folded_stack_format(self):
        tr = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=250, tracer=tr)
        with profiler:
            with tr.span("fold.me"):
                _burn(0.2)
        lines = profiler.collapsed()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack  # "span;outer;...;inner"
        assert any(line.startswith("fold.me;") for line in lines)

    def test_report_lines_and_top(self):
        tr = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=250, tracer=tr)
        with profiler:
            with tr.span("ranked"):
                _burn(0.2)
        top = profiler.top(3)
        assert top and top[0][2] >= top[-1][2]
        lines = profiler.report_lines()
        assert "samples at 250 Hz" in lines[0]
        assert any("ranked" in line for line in lines[1:])

    def test_no_samples_report(self):
        profiler = SamplingProfiler(hz=50)
        assert "no samples" in profiler.report_lines()[0]

    def test_reset_clears_everything(self):
        tr = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=250, tracer=tr)
        with profiler:
            _burn(0.1)
        assert profiler.sample_count > 0
        profiler.reset()
        assert profiler.sample_count == 0
        assert profiler.counts() == {}
        assert profiler.collapsed() == []

    def test_lifecycle_guards(self):
        profiler = SamplingProfiler(hz=50)
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.stop()  # idempotent
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_profile_helper_uses_global_tracer(self):
        tr = obs.tracer()
        tr.reset()
        obs.enable()
        try:
            with obs.profile(hz=250) as profiler:
                with obs.span("global.hot"):
                    _burn(0.2)
        finally:
            obs.disable()
            tr.reset()
        assert profiler.hz == 250
        assert "global.hot" in {span for span, _ in profiler.counts()}

    def test_default_hz_is_prime(self):
        n = DEFAULT_HZ
        assert n >= 2
        assert all(n % k for k in range(2, int(n ** 0.5) + 1))


class TestFrameFunctions:
    def test_skips_scaffolding_modules(self):
        import sys

        frame = sys._getframe()
        labels = _frame_functions(frame, limit=5)
        assert labels
        assert all(not label.startswith("threading.")
                   for label in labels)
        assert labels[0].endswith("test_skips_scaffolding_modules")
