"""System wiring tests: quickstart_system, multi-group administration,
and client robustness to storage-layer event anomalies."""

import pytest

from repro import quickstart_system
from repro.cloud import LatencyModel
from repro.crypto.rng import DeterministicRng
from repro.errors import AccessControlError
from tests.conftest import make_system


class TestQuickstart:
    def test_wiring(self):
        system = make_system("qs")
        assert system.enclave.device is system.device
        assert system.admin.enclave is system.enclave
        assert system.admin.cloud is system.cloud
        # The trust chain is established at construction.
        system.certificate.verify(system.auditor.ca_public_key)

    def test_user_key_cached(self):
        system = make_system("qs-cache")
        a = system.user_key("alice")
        b = system.user_key("alice")
        assert a is b

    def test_user_keys_work_for_clients(self):
        system = make_system("qs-keys")
        system.admin.create_group("g", ["alice"])
        client = system.make_client("g", "alice")
        client.sync()
        assert len(client.current_group_key()) == 32

    def test_system_bound_enforced(self):
        system = quickstart_system(
            partition_capacity=4, params="toy64",
            rng=DeterministicRng("bound"), system_bound=4,
        )
        system.admin.create_group("g", ["a"])
        with pytest.raises(AccessControlError, match="bound"):
            system.admin.repartition("g", new_capacity=8)

    def test_latency_model_plumbed(self):
        system = quickstart_system(
            partition_capacity=4, params="toy64",
            rng=DeterministicRng("lat"),
            latency=LatencyModel.public_cloud(seed="qs"),
        )
        system.admin.create_group("g", ["a"])
        assert system.cloud.metrics.simulated_latency_ms > 0

    def test_ca_key_pinned_in_enclave_config(self):
        system = make_system("qs-pin")
        pinned = system.enclave.config.get("ca_public_key")
        assert pinned == system.auditor.ca_public_key.encode().hex()


class TestMultiGroupAdministration:
    def test_one_admin_many_groups(self):
        """§II: few administrators manage membership for many groups."""
        system = make_system("multi-group", capacity=3)
        for g in range(5):
            system.admin.create_group(f"g{g}", [f"g{g}-u{i}"
                                                for i in range(4)])
        # Independent keys per group.
        keys = set()
        for g in range(5):
            client = system.make_client(f"g{g}", f"g{g}-u0")
            client.sync()
            keys.add(client.current_group_key())
        assert len(keys) == 5

        # A revocation in one group leaves the others untouched.
        observers = {}
        for g in (1, 2):
            client = system.make_client(f"g{g}", f"g{g}-u1")
            client.sync()
            observers[g] = (client, client.current_group_key())
        system.admin.remove_user("g1", "g1-u0")
        for g, (client, old_key) in observers.items():
            client.sync()
            if g == 1:
                assert client.current_group_key() != old_key
            else:
                assert client.current_group_key() == old_key

    def test_shared_user_across_groups(self):
        system = make_system("shared-user", capacity=3)
        system.admin.create_group("eng", ["alice", "bob"])
        system.admin.create_group("ops", ["alice", "carol"])
        eng = system.make_client("eng", "alice")
        ops = system.make_client("ops", "alice")
        eng.sync(); ops.sync()
        assert eng.current_group_key() != ops.current_group_key()
        # Revoked from one group, still in the other.
        system.admin.remove_user("eng", "alice")
        eng.sync(); ops.sync()
        from repro.errors import RevokedError
        with pytest.raises(RevokedError):
            eng.current_group_key()
        ops.current_group_key()


class TestClientEventRobustness:
    def test_duplicate_events_tolerated(self):
        """At-least-once event delivery must not confuse the client."""
        system = make_system("dup-events", capacity=3)
        system.admin.create_group("g", ["a", "b"])
        client = system.make_client("g", "a")

        original_poll = system.cloud.poll_dir

        def duplicating_poll(directory, after_sequence=0):
            events, cursor = original_poll(directory, after_sequence)
            return list(events) + list(events), cursor

        system.cloud.poll_dir = duplicating_poll
        client._cloud = system.cloud
        client.sync()
        gk = client.current_group_key()
        system.admin.rekey("g")
        client.sync()
        assert client.current_group_key() != gk

    def test_empty_poll_rounds(self):
        system = make_system("quiet", capacity=3)
        system.admin.create_group("g", ["a"])
        client = system.make_client("g", "a")
        client.sync()
        for _ in range(3):
            assert not client.sync()
        client.current_group_key()
