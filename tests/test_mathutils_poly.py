"""Tests for polynomial expansion over Z_q — the IBBE quadratic kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathError
from repro.mathutils.poly import (
    monic_linear_product,
    poly_div_linear,
    poly_eval,
    poly_mul,
)

Q = 2_147_483_647  # prime


class TestPolyMul:
    def test_basic(self):
        # (1 + x)(1 + x) = 1 + 2x + x²
        assert poly_mul([1, 1], [1, 1], Q) == [1, 2, 1]

    def test_empty(self):
        assert poly_mul([], [1, 2], Q) == []

    def test_degree(self):
        out = poly_mul([1, 2, 3], [4, 5], Q)
        assert len(out) == 4

    @given(st.lists(st.integers(0, Q - 1), min_size=1, max_size=6),
           st.lists(st.integers(0, Q - 1), min_size=1, max_size=6),
           st.integers(0, Q - 1))
    @settings(max_examples=40)
    def test_evaluation_homomorphism(self, a, b, x):
        product = poly_mul(a, b, Q)
        assert poly_eval(product, x, Q) == (
            poly_eval(a, x, Q) * poly_eval(b, x, Q)
        ) % Q


class TestMonicLinearProduct:
    def test_single_root(self):
        # (x + 5)
        assert monic_linear_product([5], Q) == [5, 1]

    def test_two_roots(self):
        # (x + 2)(x + 3) = 6 + 5x + x²
        assert monic_linear_product([2, 3], Q) == [6, 5, 1]

    def test_empty_is_one(self):
        assert monic_linear_product([], Q) == [1]

    def test_constant_term_is_product(self):
        roots = [7, 11, 13, 17]
        coeffs = monic_linear_product(roots, Q)
        product = 1
        for r in roots:
            product = product * r % Q
        assert coeffs[0] == product
        assert coeffs[-1] == 1

    @given(st.lists(st.integers(1, Q - 1), min_size=0, max_size=8),
           st.integers(0, Q - 1))
    @settings(max_examples=40)
    def test_matches_direct_evaluation(self, roots, x):
        coeffs = monic_linear_product(roots, Q)
        direct = 1
        for r in roots:
            direct = direct * (x + r) % Q
        assert poly_eval(coeffs, x, Q) == direct


class TestPolyDivLinear:
    def test_exact_division(self):
        coeffs = monic_linear_product([2, 3, 4], Q)
        quotient = poly_div_linear(coeffs, 3, Q)
        assert quotient == monic_linear_product([2, 4], Q)

    def test_inexact_raises(self):
        coeffs = monic_linear_product([2, 3], Q)
        with pytest.raises(MathError):
            poly_div_linear(coeffs, 9, Q)

    def test_empty(self):
        assert poly_div_linear([], 5, Q) == []

    @given(st.lists(st.integers(1, Q - 1), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_roundtrip(self, roots):
        coeffs = monic_linear_product(roots, Q)
        reduced = poly_div_linear(coeffs, roots[0], Q)
        assert reduced == monic_linear_product(roots[1:], Q)
