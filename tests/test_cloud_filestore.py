"""File-backed cloud store tests (mirrors test_cloud_store semantics)."""

import pytest

from repro.cloud import FileCloudStore
from repro.errors import ConflictError, NotFoundError, StorageError


@pytest.fixture()
def store(tmp_path):
    return FileCloudStore(tmp_path / "cloud")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        assert store.put("/g/p0", b"data") == 1
        obj = store.get("/g/p0")
        assert obj.data == b"data"
        assert obj.version == 1

    def test_versions_persist(self, store, tmp_path):
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2")
        # A second handle over the same directory sees the same state.
        other = FileCloudStore(tmp_path / "cloud")
        assert other.get("/g/p0").version == 2
        assert other.get("/g/p0").data == b"v2"

    def test_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("/none")

    def test_delete(self, store):
        store.put("/g/p0", b"x")
        store.delete("/g/p0")
        assert not store.exists("/g/p0")
        with pytest.raises(NotFoundError):
            store.delete("/g/p0")

    def test_conditional_put(self, store):
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2", expected_version=1)
        with pytest.raises(ConflictError):
            store.put("/g/p0", b"v3", expected_version=1)

    def test_unicode_and_slashes_in_paths(self, store):
        store.put("/gr/sub/ü", b"x")
        assert store.get("/gr/sub/ü").data == b"x"

    def test_bad_path(self, store):
        with pytest.raises(StorageError):
            store.put("/a/../b", b"x")


class TestDirectoriesAndPolling:
    def test_list_dir(self, store):
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        store.put("/h/p0", b"c")
        assert store.list_dir("/g") == ["/g/p0", "/g/p1"]

    def test_poll_across_instances(self, store, tmp_path):
        store.put("/g/p0", b"a")
        events, cursor = store.poll_dir("/g")
        assert len(events) == 1
        other = FileCloudStore(tmp_path / "cloud")
        other.put("/g/p1", b"b")
        events, _ = store.poll_dir("/g", cursor)
        assert [e.path for e in events] == ["/g/p1"]

    def test_delete_event(self, store):
        store.put("/g/p0", b"a")
        store.delete("/g/p0")
        events, _ = store.poll_dir("/g")
        assert [e.kind for e in events] == ["put", "delete"]


class TestAdversaryView:
    def test_iterates_objects(self, store):
        store.put("/g/p0", b"x")
        store.put("/g/p1", b"y")
        view = {obj.path: obj.data for obj in store.adversary_view()}
        assert view == {"/g/p0": b"x", "/g/p1": b"y"}

    def test_total_bytes(self, store):
        store.put("/g/p0", bytes(10))
        store.put("/h/p0", bytes(30))
        assert store.total_stored_bytes("/g") == 10
        assert store.total_stored_bytes() == 40


class TestSystemOnFileStore:
    def test_full_flow_on_disk(self, tmp_path):
        """The complete admin/client flow with disk-backed storage."""
        from repro import quickstart_system
        from repro.crypto.rng import DeterministicRng

        system = quickstart_system(
            partition_capacity=3, params="toy64",
            rng=DeterministicRng("filestore-e2e"),
        )
        # Swap the in-memory store for the file-backed one.
        store = FileCloudStore(tmp_path / "cloud")
        system.cloud = store
        system.admin.cloud = store

        system.admin.create_group("g", ["a", "b", "c", "d"])
        client = system.make_client("g", "a")
        client.sync()
        gk = client.current_group_key()
        system.admin.remove_user("g", "b")
        client.sync()
        assert client.current_group_key() != gk
