"""File-backed cloud store tests (mirrors test_cloud_store semantics)."""

import pytest

from repro.cloud import FileCloudStore
from repro.errors import ConflictError, NotFoundError, StorageError


@pytest.fixture()
def store(tmp_path):
    return FileCloudStore(tmp_path / "cloud")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        assert store.put("/g/p0", b"data") == 1
        obj = store.get("/g/p0")
        assert obj.data == b"data"
        assert obj.version == 1

    def test_versions_persist(self, store, tmp_path):
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2")
        # A second handle over the same directory sees the same state.
        other = FileCloudStore(tmp_path / "cloud")
        assert other.get("/g/p0").version == 2
        assert other.get("/g/p0").data == b"v2"

    def test_missing_raises(self, store):
        with pytest.raises(NotFoundError):
            store.get("/none")

    def test_delete(self, store):
        store.put("/g/p0", b"x")
        store.delete("/g/p0")
        assert not store.exists("/g/p0")
        with pytest.raises(NotFoundError):
            store.delete("/g/p0")

    def test_conditional_put(self, store):
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2", expected_version=1)
        with pytest.raises(ConflictError):
            store.put("/g/p0", b"v3", expected_version=1)

    def test_unicode_and_slashes_in_paths(self, store):
        store.put("/gr/sub/ü", b"x")
        assert store.get("/gr/sub/ü").data == b"x"

    def test_bad_path(self, store):
        with pytest.raises(StorageError):
            store.put("/a/../b", b"x")


class TestDirectoriesAndPolling:
    def test_list_dir(self, store):
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        store.put("/h/p0", b"c")
        assert store.list_dir("/g") == ["/g/p0", "/g/p1"]

    def test_poll_across_instances(self, store, tmp_path):
        store.put("/g/p0", b"a")
        events, cursor = store.poll_dir("/g")
        assert len(events) == 1
        other = FileCloudStore(tmp_path / "cloud")
        other.put("/g/p1", b"b")
        events, _ = store.poll_dir("/g", cursor)
        assert [e.path for e in events] == ["/g/p1"]

    def test_delete_event(self, store):
        store.put("/g/p0", b"a")
        store.delete("/g/p0")
        events, _ = store.poll_dir("/g")
        assert [e.kind for e in events] == ["put", "delete"]


class TestAdversaryView:
    def test_iterates_objects(self, store):
        store.put("/g/p0", b"x")
        store.put("/g/p1", b"y")
        view = {obj.path: obj.data for obj in store.adversary_view()}
        assert view == {"/g/p0": b"x", "/g/p1": b"y"}

    def test_total_bytes(self, store):
        store.put("/g/p0", bytes(10))
        store.put("/h/p0", bytes(30))
        assert store.total_stored_bytes("/g") == 10
        assert store.total_stored_bytes() == 40


class TestSystemOnFileStore:
    def test_full_flow_on_disk(self, tmp_path):
        """The complete admin/client flow with disk-backed storage."""
        from repro import quickstart_system
        from repro.crypto.rng import DeterministicRng

        system = quickstart_system(
            partition_capacity=3, params="toy64",
            rng=DeterministicRng("filestore-e2e"),
        )
        # Swap the in-memory store for the file-backed one.
        store = FileCloudStore(tmp_path / "cloud")
        system.cloud = store
        system.admin.cloud = store

        system.admin.create_group("g", ["a", "b", "c", "d"])
        client = system.make_client("g", "a")
        client.sync()
        gk = client.current_group_key()
        system.admin.remove_user("g", "b")
        client.sync()
        assert client.current_group_key() != gk


class _CrashAt:
    """Minimal injector stand-in: crash the first ``times`` hits of one
    named crash point, pass everything else through."""

    def __init__(self, point, times=1):
        self.point = point
        self.remaining = times

    def crash_point(self, name):
        from repro.errors import CrashError

        if name == self.point and self.remaining > 0:
            self.remaining -= 1
            raise CrashError(name)


class TestCrashRecovery:
    """Torn writes at every named crash point must recover on re-open
    (journal roll-forward), never losing an acknowledged commit."""

    def crash_batch_at(self, tmp_path, point):
        from repro.cloud.store import CloudBatch
        from repro.errors import CrashError
        from repro.faults import install

        store = FileCloudStore(tmp_path / "cloud")
        store.put("/g/stale", b"old")
        batch = CloudBatch()
        batch.put("/g/p0", b"zero")
        batch.put("/g/p1", b"one")
        batch.delete("/g/stale")
        install(_CrashAt(point))
        try:
            with pytest.raises(CrashError):
                store.commit(batch)
        finally:
            install(None)
        return FileCloudStore(tmp_path / "cloud")  # the restarted process

    @pytest.mark.parametrize("point", [
        "cloud.commit.journaled",
        "cloud.commit.apply",
        "store.put.data_written",
    ])
    def test_journaled_commit_rolls_forward(self, tmp_path, point):
        recovered = self.crash_batch_at(tmp_path, point)
        assert recovered.get("/g/p0").data == b"zero"
        assert recovered.get("/g/p1").data == b"one"
        assert not recovered.exists("/g/stale")
        assert recovered.metrics.registry.snapshot()["cloud.recoveries"] == 1
        # The journal is consumed; a third open has nothing to replay.
        assert not (tmp_path / "cloud" / "commit.journal").exists()

    def test_recovered_events_are_complete_and_ordered(self, tmp_path):
        recovered = self.crash_batch_at(tmp_path, "cloud.commit.apply")
        events, _ = recovered.poll_dir("/g")
        assert [(e.kind, e.path) for e in events] == [
            ("put", "/g/stale"),
            ("put", "/g/p0"),
            ("put", "/g/p1"),
            ("delete", "/g/stale"),
        ]
        sequences = [e.sequence for e in events]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_crashed_single_put_recovers(self, tmp_path):
        from repro.errors import CrashError
        from repro.faults import install

        store = FileCloudStore(tmp_path / "cloud")
        install(_CrashAt("store.put.data_written"))
        try:
            with pytest.raises(CrashError):
                store.put("/g/p0", b"data")
        finally:
            install(None)
        recovered = FileCloudStore(tmp_path / "cloud")
        assert recovered.get("/g/p0").data == b"data"
        assert recovered.get("/g/p0").version == 1

    def test_stray_tmp_files_swept(self, tmp_path):
        store = FileCloudStore(tmp_path / "cloud")
        store.put("/g/p0", b"data")
        stray = tmp_path / "cloud" / "objects" / "deadbeef.tmp"
        stray.write_bytes(b"torn")
        reopened = FileCloudStore(tmp_path / "cloud")
        assert not stray.exists()
        assert reopened.list_dir("/g") == ["/g/p0"]

    def test_missing_meta_rebuilt_from_event_log(self, tmp_path):
        store = FileCloudStore(tmp_path / "cloud")
        store.put("/g/p0", b"v1")
        store.put("/g/p0", b"v2")
        metas = list((tmp_path / "cloud" / "objects").glob("*.meta"))
        assert len(metas) == 1
        metas[0].unlink()
        reopened = FileCloudStore(tmp_path / "cloud")
        assert reopened.get("/g/p0").version == 2
        assert reopened.metrics.registry.snapshot()["cloud.meta_rebuilds"] >= 1

    def test_torn_final_event_line_skipped(self, tmp_path):
        store = FileCloudStore(tmp_path / "cloud")
        store.put("/g/p0", b"a")
        events_path = tmp_path / "cloud" / "events.jsonl"
        with events_path.open("a", encoding="utf-8") as handle:
            handle.write('{"sequence": 2, "kind": "pu')  # torn mid-write
        reopened = FileCloudStore(tmp_path / "cloud")
        events, cursor = reopened.poll_dir("/g")
        assert [e.path for e in events] == ["/g/p0"]
        # New writes sequence after the surviving events.
        reopened.put("/g/p1", b"b")
        events, _ = reopened.poll_dir("/g", cursor)
        assert [e.path for e in events] == ["/g/p1"]


class TestPollEdgeSemantics:
    def test_after_sequence_past_end(self, store):
        store.put("/g/p0", b"a")
        events, cursor = store.poll_dir("/g", after_sequence=999)
        assert events == []
        assert cursor == 999  # the cursor never moves backwards

    def test_resubscribe_replays_history(self, store):
        """A watcher that lost its cursor resubscribes from zero and gets
        every event again — delivery is at-least-once, dedup is the
        subscriber's job (clients dedup via record versions)."""
        store.put("/g/p0", b"a")
        store.put("/g/p1", b"b")
        first, cursor = store.poll_dir("/g")
        assert len(first) == 2
        replay, _ = store.poll_dir("/g", after_sequence=0)
        assert [(e.kind, e.path, e.sequence) for e in replay] == \
            [(e.kind, e.path, e.sequence) for e in first]

    def test_watcher_survives_store_restart(self, store, tmp_path):
        store.put("/g/p0", b"a")
        _, cursor = store.poll_dir("/g")
        # The store process restarts; the watcher keeps its cursor.
        restarted = FileCloudStore(tmp_path / "cloud")
        restarted.put("/g/p1", b"b")
        events, new_cursor = restarted.poll_dir("/g", cursor)
        assert [e.path for e in events] == ["/g/p1"]
        assert new_cursor > cursor
        # And nothing further: the cursor advanced exactly past /g/p1.
        events, _ = restarted.poll_dir("/g", new_cursor)
        assert events == []
