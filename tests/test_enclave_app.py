"""Tests for the IBBE-SGX enclave application (Algorithms 1-3, trusted side)."""

import pytest

from repro import ibbe
from repro.core.envelope import unwrap_group_key
from repro.crypto.rng import DeterministicRng
from repro.enclave_app import IbbeEnclave
from repro.errors import EnclaveError
from repro.pairing.group import GTElement
from repro.sgx.device import SgxDevice


@pytest.fixture()
def loaded(group):
    device = SgxDevice(rng=DeterministicRng("enclave-app"))
    enclave = IbbeEnclave.load(device, {"pairing_group": group})
    pk, sealed_msk = enclave.call("setup_system", 8)
    return device, enclave, pk, sealed_msk


def _decrypt_blob(pk, enclave, blob, members, identity, group_id="g"):
    """Member-side derivation of gk from a partition blob."""
    usk_raw = enclave.call("extract_user_key_raw", identity)
    from repro.pairing.group import G1Element
    usk = ibbe.IbbeUserKey(identity, G1Element.decode(pk.group, usk_raw))
    ct = ibbe.IbbeCiphertext.decode(pk.group, blob.ciphertext)
    bk = ibbe.decrypt(pk, usk, members, ct)
    return unwrap_group_key(bk.digest(), blob.envelope,
                            aad=group_id.encode("utf-8"))


class TestLifecycle:
    def test_double_setup_rejected(self, loaded):
        _, enclave, _, _ = loaded
        with pytest.raises(EnclaveError):
            enclave.call("setup_system", 8)

    def test_requires_pairing_group_config(self):
        device = SgxDevice(rng=DeterministicRng("no-config"))
        with pytest.raises(EnclaveError):
            IbbeEnclave.load(device, {})

    def test_operations_require_setup(self, group):
        device = SgxDevice(rng=DeterministicRng("fresh"))
        enclave = IbbeEnclave.load(device, {"pairing_group": group})
        with pytest.raises(EnclaveError):
            enclave.call("extract_user_key_raw", "alice")

    def test_restore_from_sealed_msk(self, loaded, group):
        device, enclave, pk, sealed_msk = loaded
        usk_before = enclave.call("extract_user_key_raw", "alice")
        # A fresh instance of the same enclave code on the same device.
        twin = IbbeEnclave.load(device, {"pairing_group": group})
        twin.call("restore_system", sealed_msk, pk)
        assert twin.call("extract_user_key_raw", "alice") == usk_before

    def test_restore_on_wrong_device_fails(self, loaded, group):
        _, _, pk, sealed_msk = loaded
        other_device = SgxDevice(rng=DeterministicRng("other-device"))
        imposter = IbbeEnclave.load(other_device, {"pairing_group": group})
        from repro.errors import SealingError
        with pytest.raises(SealingError):
            imposter.call("restore_system", sealed_msk, pk)


class TestCreateGroup:
    def test_partition_blobs_decrypt_to_same_gk(self, loaded):
        _, enclave, pk, _ = loaded
        parts = [["a", "b", "c"], ["d", "e"]]
        blobs, sealed_gk = enclave.call("create_group", "g", parts)
        assert len(blobs) == 2
        gk0 = _decrypt_blob(pk, enclave, blobs[0], parts[0], "a")
        gk1 = _decrypt_blob(pk, enclave, blobs[1], parts[1], "e")
        assert gk0 == gk1
        assert len(gk0) == 32

    def test_gk_not_in_any_output(self, loaded):
        """Zero knowledge: the plaintext gk must not cross the boundary."""
        _, enclave, pk, _ = loaded
        parts = [["a", "b"]]
        blobs, sealed_gk = enclave.call("create_group", "g", parts)
        gk = _decrypt_blob(pk, enclave, blobs[0], parts[0], "a")
        assert gk not in blobs[0].ciphertext
        assert gk not in blobs[0].envelope
        assert gk not in sealed_gk

    def test_envelopes_bound_to_group(self, loaded):
        _, enclave, pk, _ = loaded
        blobs, _ = enclave.call("create_group", "g1", [["a"]])
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            _decrypt_blob(pk, enclave, blobs[0], ["a"], "a", group_id="g2")


class TestAddUser:
    def test_existing_partition_path(self, loaded):
        _, enclave, pk, _ = loaded
        blobs, sealed_gk = enclave.call("create_group", "g", [["a", "b"]])
        new_ct = enclave.call(
            "add_user_to_partition", blobs[0].ciphertext, "c"
        )
        from repro.enclave_app import PartitionBlob
        blob = PartitionBlob(ciphertext=new_ct, envelope=blobs[0].envelope)
        gk_new = _decrypt_blob(pk, enclave, blob, ["a", "b", "c"], "c")
        gk_old = _decrypt_blob(pk, enclave, blobs[0], ["a", "b"], "a")
        assert gk_new == gk_old  # add does not rekey

    def test_new_partition_path(self, loaded):
        _, enclave, pk, _ = loaded
        blobs, sealed_gk = enclave.call("create_group", "g", [["a", "b"]])
        new_blob = enclave.call("create_partition", "g", ["z"], sealed_gk)
        gk_z = _decrypt_blob(pk, enclave, new_blob, ["z"], "z")
        gk_a = _decrypt_blob(pk, enclave, blobs[0], ["a", "b"], "a")
        assert gk_z == gk_a


class TestRemoveUser:
    def test_remove_rekeys_all_partitions(self, loaded):
        _, enclave, pk, _ = loaded
        parts = [["a", "b", "c"], ["d", "e"]]
        blobs, _ = enclave.call("create_group", "g", parts)
        gk_old = _decrypt_blob(pk, enclave, blobs[0], parts[0], "a")

        host_blob, other_blobs, sealed_gk = enclave.call(
            "remove_user", "g", "b", blobs[0].ciphertext,
            [blobs[1].ciphertext],
        )
        gk_host = _decrypt_blob(pk, enclave, host_blob, ["a", "c"], "a")
        gk_other = _decrypt_blob(pk, enclave, other_blobs[0], parts[1], "d")
        assert gk_host == gk_other
        assert gk_host != gk_old

    def test_removed_user_cannot_decrypt(self, loaded, group):
        _, enclave, pk, _ = loaded
        blobs, _ = enclave.call("create_group", "g", [["a", "b", "c"]])
        host_blob, _, _ = enclave.call(
            "remove_user", "g", "b", blobs[0].ciphertext, []
        )
        usk_raw = enclave.call("extract_user_key_raw", "b")
        from repro.pairing.group import G1Element
        usk_b = ibbe.IbbeUserKey("b", G1Element.decode(group, usk_raw))
        ct = ibbe.IbbeCiphertext.decode(group, host_blob.ciphertext)
        derived = ibbe.decrypt(pk, usk_b, ["a", "c", "b"], ct)
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            unwrap_group_key(derived.digest(), host_blob.envelope,
                             aad=b"g")


class TestRekeyGroup:
    def test_rekey_changes_gk_keeps_members(self, loaded):
        _, enclave, pk, _ = loaded
        parts = [["a", "b"], ["c"]]
        blobs, _ = enclave.call("create_group", "g", parts)
        gk_old = _decrypt_blob(pk, enclave, blobs[0], parts[0], "a")
        new_blobs, _ = enclave.call(
            "rekey_group", "g", [b.ciphertext for b in blobs]
        )
        gk_new = _decrypt_blob(pk, enclave, new_blobs[0], parts[0], "b")
        assert gk_new != gk_old
        assert gk_new == _decrypt_blob(pk, enclave, new_blobs[1], parts[1], "c")


class TestRollbackProtection:
    def test_stale_sealed_gk_rejected(self, loaded):
        _, enclave, pk, _ = loaded
        blobs, sealed_v1 = enclave.call("create_group", "g", [["a", "b"]])
        _, _, sealed_v2 = enclave.call(
            "remove_user", "g", "b", blobs[0].ciphertext, []
        )
        # Replaying the pre-revocation sealed gk must be detected.
        with pytest.raises(EnclaveError, match="rollback"):
            enclave.call("create_partition", "g", ["z"], sealed_v1)

    def test_current_sealed_gk_accepted(self, loaded):
        _, enclave, pk, _ = loaded
        blobs, sealed_v1 = enclave.call("create_group", "g", [["a", "b"]])
        _, _, sealed_v2 = enclave.call(
            "remove_user", "g", "b", blobs[0].ciphertext, []
        )
        enclave.call("create_partition", "g", ["z"], sealed_v2)
