"""Hash-chained operation log tests (future-work extension)."""

import pytest

from repro.core.oplog import (
    GENESIS_HASH,
    LoggedAdministrator,
    OperationLog,
    OpLogEntry,
)
from repro.crypto import ecdsa
from repro.crypto.rng import DeterministicRng
from repro.errors import AccessControlError, AuthenticationError
from tests.conftest import make_system


@pytest.fixture()
def admins():
    rng = DeterministicRng("oplog")
    keys = {
        "admin1": ecdsa.generate_keypair(rng),
        "admin2": ecdsa.generate_keypair(rng),
    }
    log = OperationLog({name: key.public_key() for name, key in keys.items()})
    return log, keys


class TestChain:
    def test_append_and_verify(self, admins):
        log, keys = admins
        log.append("g", "create", "", "admin1", keys["admin1"])
        log.append("g", "add", "alice", "admin2", keys["admin2"])
        log.append("g", "remove", "alice", "admin1", keys["admin1"])
        log.verify_chain()
        assert len(log) == 3

    def test_genesis_linkage(self, admins):
        log, keys = admins
        entry = log.append("g", "create", "", "admin1", keys["admin1"])
        assert entry.prev_hash == GENESIS_HASH

    def test_unknown_admin_rejected(self, admins):
        log, keys = admins
        rogue = ecdsa.generate_keypair(DeterministicRng("rogue"))
        with pytest.raises(AccessControlError):
            log.append("g", "create", "", "rogue", rogue)

    def test_wrong_key_rejected(self, admins):
        log, keys = admins
        with pytest.raises(AuthenticationError):
            log.append("g", "create", "", "admin1", keys["admin2"])

    def test_retro_edit_detected(self, admins):
        log, keys = admins
        for user in ["a", "b", "c"]:
            log.append("g", "add", user, "admin1", keys["admin1"])
        entries = log.entries()
        forged = OpLogEntry(
            index=1, prev_hash=entries[1].prev_hash, group_id="g",
            kind="add", user="EVIL", admin_id="admin1",
            timestamp=entries[1].timestamp,
            signature=keys["admin1"].sign(b"junk"),
        )
        tampered = [entries[0], forged, entries[2]]
        with pytest.raises(AuthenticationError):
            log.verify_chain(tampered)

    def test_reorder_detected(self, admins):
        log, keys = admins
        for user in ["a", "b"]:
            log.append("g", "add", user, "admin1", keys["admin1"])
        entries = log.entries()
        with pytest.raises(AuthenticationError):
            log.verify_chain([entries[1], entries[0]])

    def test_splice_detected(self, admins):
        log, keys = admins
        for user in ["a", "b", "c"]:
            log.append("g", "add", user, "admin1", keys["admin1"])
        entries = log.entries()
        with pytest.raises(AuthenticationError):
            log.verify_chain([entries[0], entries[2]])

    def test_entry_codec_roundtrip(self, admins):
        log, keys = admins
        entry = log.append("g", "add", "alice", "admin1", keys["admin1"])
        decoded = OpLogEntry.decode(entry.encode())
        assert decoded == entry


class TestCheckpoints:
    def test_checkpoint_and_verify(self, admins):
        log, keys = admins
        log.append("g", "create", "", "admin1", keys["admin1"])
        log.append("g", "add", "alice", "admin1", keys["admin1"])
        checkpoint = log.checkpoint("admin2", keys["admin2"])
        log.verify_checkpoint(checkpoint)
        assert checkpoint.up_to_index == 1

    def test_empty_log_cannot_checkpoint(self, admins):
        log, keys = admins
        with pytest.raises(AccessControlError):
            log.checkpoint("admin1", keys["admin1"])

    def test_forged_checkpoint_detected(self, admins):
        log, keys = admins
        log.append("g", "create", "", "admin1", keys["admin1"])
        checkpoint = log.checkpoint("admin1", keys["admin1"])
        from dataclasses import replace
        forged = replace(checkpoint, head_hash=bytes(32))
        with pytest.raises(AuthenticationError):
            log.verify_checkpoint(forged)


class TestCompaction:
    def _filled(self, admins, count=5):
        log, keys = admins
        for i in range(count):
            log.append("g", "add", f"u{i}", "admin1", keys["admin1"])
        return log, keys

    def test_compact_drops_certified_prefix(self, admins):
        log, keys = self._filled(admins)
        checkpoint = log.checkpoint("admin2", keys["admin2"])
        log.append("g", "add", "late", "admin1", keys["admin1"])
        assert log.compact(checkpoint) == 5
        assert log.base_index == 4
        assert [e.user for e in log.entries()] == ["late"]
        log.verify_chain()
        log.verify_checkpoint(checkpoint)   # retained base anchor

    def test_compact_is_idempotent(self, admins):
        log, keys = self._filled(admins)
        checkpoint = log.checkpoint("admin1", keys["admin1"])
        assert log.compact(checkpoint) == 5
        assert log.compact(checkpoint) == 0
        assert log.base_index == 4

    def test_append_continues_from_base(self, admins):
        log, keys = self._filled(admins, count=3)
        checkpoint = log.checkpoint("admin1", keys["admin1"])
        log.compact(checkpoint)
        entry = log.append("g", "add", "next", "admin1", keys["admin1"])
        assert entry.index == 3
        assert entry.prev_hash == log.base_hash
        log.verify_chain()

    def test_checkpoint_inside_compacted_prefix_rejected(self, admins):
        log, keys = self._filled(admins, count=2)
        early = log.checkpoint("admin1", keys["admin1"])
        log.append("g", "add", "u2", "admin1", keys["admin1"])
        late = log.checkpoint("admin1", keys["admin1"])
        log.compact(late)
        with pytest.raises(AuthenticationError, match="compacted prefix"):
            log.verify_checkpoint(early)

    def test_encode_decode_roundtrips_compacted_log(self, admins):
        log, keys = self._filled(admins)
        checkpoint = log.checkpoint("admin2", keys["admin2"])
        log.compact(checkpoint)
        log.append("g", "remove", "u0", "admin1", keys["admin1"])

        public = {name: key.public_key() for name, key in keys.items()}
        decoded = OperationLog.decode(log.encode(), public)
        assert decoded.base_index == log.base_index
        assert decoded.base_hash == log.base_hash
        assert decoded.entries() == log.entries()
        decoded.verify_chain()

    def test_decode_requires_certifying_checkpoint(self, admins):
        log, keys = self._filled(admins)
        checkpoint = log.checkpoint("admin1", keys["admin1"])
        log.compact(checkpoint)
        log._checkpoints = []   # strip the trust anchor
        public = {name: key.public_key() for name, key in keys.items()}
        with pytest.raises(AuthenticationError,
                           match="certifying checkpoint"):
            OperationLog.decode(log.encode(), public)

    def test_full_history_export_still_verifies_from_genesis(self, admins):
        log, keys = self._filled(admins, count=4)
        exported = log.entries()          # snapshot before compaction
        checkpoint = log.checkpoint("admin1", keys["admin1"])
        log.compact(checkpoint)
        # An explicitly supplied full history (index 0 …) is audited
        # from genesis even though the live log is based elsewhere.
        log.verify_chain(exported)


class TestLoggedAdministrator:
    def test_operations_logged(self, admins):
        log, keys = admins
        system = make_system("oplog-sys", capacity=4)
        logged = LoggedAdministrator(system.admin, log, "admin1",
                                     keys["admin1"])
        logged.create_group("g", ["a", "b", "c"])
        logged.add_user("g", "d")
        logged.remove_user("g", "b")
        logged.rekey("g")
        log.verify_chain()
        kinds = [e.kind for e in log.entries()]
        assert kinds == ["create", "add", "remove", "rekey"]
        # Operations really happened.
        assert "d" in system.admin.group_state("g").table
        assert "b" not in system.admin.group_state("g").table

    def test_checkpoint_every_bounds_live_log(self, admins):
        log, keys = admins
        system = make_system("oplog-cp", capacity=4)
        logged = LoggedAdministrator(system.admin, log, "admin1",
                                     keys["admin1"], checkpoint_every=2,
                                     compact_on_checkpoint=True)
        logged.create_group("g", ["a", "b", "c"])
        for user in ["d", "e", "f", "g2"]:
            logged.add_user("g", user)
        # Every second operation certifies + folds: at most 2 live
        # entries ever accumulate, yet the chain stays auditable.
        assert len(log) <= 2
        assert log.base_index >= 3
        log.verify_chain()

    def test_checkpoint_every_validated(self, admins):
        log, keys = admins
        system = make_system("oplog-bad", capacity=4)
        with pytest.raises(AccessControlError):
            LoggedAdministrator(system.admin, log, "admin1",
                                keys["admin1"], checkpoint_every=0)
