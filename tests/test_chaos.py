"""Chaos-equivalence tests: the executable form of the fault-model
contract in DESIGN.md — a retried, recovered, restarted run converges to
the same final state as the fault-free run."""

import pytest

from repro import quickstart_system
from repro.cloud import CloudStore
from repro.crypto import DeterministicRng
from repro.errors import EnclaveError
from repro.faults import FaultPlan
from repro.workloads.chaos import (
    cloud_digest,
    make_membership_trace,
    run_chaos,
)


class TestCloudDigest:
    def test_versions_excluded(self):
        a, b = CloudStore(), CloudStore()
        a.put("/g/p0", b"data")
        b.put("/g/p0", b"old")
        b.put("/g/p0", b"data")  # same bytes, higher version
        assert cloud_digest(a) == cloud_digest(b)

    def test_sealed_gk_excluded(self):
        a, b = CloudStore(), CloudStore()
        for store, blob in ((a, b"sealed-one"), (b, b"sealed-two")):
            store.put("/g/p0", b"data")
            store.put("/g/sealed-gk", blob)
        assert cloud_digest(a) == cloud_digest(b)

    def test_content_differences_detected(self):
        a, b = CloudStore(), CloudStore()
        a.put("/g/p0", b"data")
        b.put("/g/p0", b"tampered")
        assert cloud_digest(a) != cloud_digest(b)


class TestMembershipTrace:
    def test_deterministic_per_seed(self):
        assert make_membership_trace(20, 10, 4, "t") == \
            make_membership_trace(20, 10, 4, "t")
        assert make_membership_trace(20, 10, 4, "t") != \
            make_membership_trace(20, 10, 4, "u")

    def test_trace_is_always_valid(self):
        initial, trace = make_membership_trace(40, 10, 4, "valid")
        members = set(initial)
        for op in trace:
            if op.kind == "add":
                assert op.user not in members
                members.add(op.user)
            else:
                assert op.user in members
                members.remove(op.user)
            assert members  # never empties the group


class TestChaosEquivalence:
    def test_store_faults_converge(self):
        report = run_chaos(FaultPlan.store_faults("ci-store"),
                           ops=12, pool=8, initial=4, seed="ci-store")
        assert report.fault_history  # faults actually fired
        assert report.retry_backoff_ms > 0.0
        assert report.revocation_checks > 0
        assert report.revocation_failures == 0
        assert report.reference_digest == report.chaos_digest
        assert report.reference_key_hash == report.chaos_key_hash
        assert report.converged

    def test_full_chaos_with_crashes_converges(self):
        report = run_chaos(FaultPlan.full_chaos("ci-full"),
                           ops=12, pool=8, initial=4, seed="ci-full")
        assert report.converged
        assert report.crashes_recovered >= 1
        kinds = {kind for kind, _ in report.fault_history}
        assert "crash" in kinds

    def test_enclave_restart_resumes_administration(self):
        """An injected full enclave restart (seal → fresh load → unseal)
        must leave subsequent operations byte-equivalent and every
        later revocation enforced."""
        plan = FaultPlan(seed="ci-restart", store_error_rate=0.05,
                         crash_rate=0.08, max_crashes=2,
                         enclave_restart_rate=0.5, max_enclave_restarts=1)
        report = run_chaos(plan, ops=12, pool=8, initial=4,
                           seed="ci-restart")
        assert report.enclave_restarts == 1
        assert report.converged
        assert report.revocation_failures == 0

    def test_same_seed_reproduces_identical_fault_sequence(self):
        plan = FaultPlan.full_chaos("ci-replay")
        first = run_chaos(plan, ops=10, pool=8, initial=4, seed="ci-replay")
        second = run_chaos(plan, ops=10, pool=8, initial=4, seed="ci-replay")
        assert first.fault_history == second.fault_history
        assert first.chaos_digest == second.chaos_digest
        assert first.summary() == second.summary()


class TestEnclaveRestart:
    """System.restart_enclave in isolation (no fault injector)."""

    def make_system(self):
        return quickstart_system(
            partition_capacity=4, params="toy64",
            rng=DeterministicRng("restart-test"), auto_repartition=False,
        )

    def test_restart_unseals_and_resumes(self):
        system = self.make_system()
        try:
            system.admin.create_group("g", ["a", "b", "c"])
            client = system.make_client("g", "a")
            client.sync()
            key_before = client.current_group_key()
            old_enclave = system.enclave
            system.restart_enclave()
            assert system.enclave is not old_enclave
            assert system.admin.enclave is system.enclave
            # The restarted enclave administers the group: a removal
            # re-keys, and the surviving member derives the new key.
            system.admin.remove_user("g", "b")
            client.sync()
            key_after = client.current_group_key()
            assert key_after != key_before
        finally:
            system.close()

    def test_seal_versions_survive_restart(self):
        """Monotonic counters are a platform service: a restarted
        enclave must keep advancing the seal version, not reset it (a
        reset would let the host replay pre-restart sealed blobs)."""
        system = self.make_system()
        try:
            system.admin.create_group("g", ["a", "b"])
            counter = system.device.counters
            version_before = counter.read("gk:g")
            system.restart_enclave()
            # Only revocation re-keys (hence reseals) in IBBE-SGX.
            system.admin.remove_user("g", "b")
            assert counter.read("gk:g") > version_before
        finally:
            system.close()

    def test_restart_requires_carried_config(self):
        system = self.make_system()
        try:
            system.enclave_config = None
            with pytest.raises(EnclaveError, match="enclave configuration"):
                system.restart_enclave()
        finally:
            system.close()
