"""Network serving layer tests: wire schema, server, client SDK.

The headline assertions mirror the serving-layer contract:

* a seeded create/rekey/remove + client-sync workload produces the
  byte-identical cloud state and client group key whether the store is
  in-process or behind a real TCP ``StoreServer``;
* transient injected outages are absorbed by the existing retry layers
  with the remote store plugged in unchanged;
* killing the server mid-commit (an injected crash inside the store)
  surfaces as an *outcome unknown* failure at the client, and the
  journal roll-forward on restart resolves it to exactly-once.
"""

import socket
import threading
import time

import pytest

from repro.cloud import CloudBatch, CloudStore, FileCloudStore
from repro.crypto import DeterministicRng
from repro.errors import (
    AccessControlError,
    ConflictError,
    NotFoundError,
    ProtocolVersionError,
    ReproError,
    StorageError,
    UnavailableError,
    ValidationError,
    WireError,
    error_code,
)
from repro.faults import FaultInjector, FaultPlan, use_faults
from repro.net import (
    AdminBridge,
    RemoteAdmin,
    RemoteCloudStore,
    ServerThread,
    connect_store,
    parse_store_url,
)
from repro.net import wire
from repro.workloads.chaos import cloud_digest


# ---------------------------------------------------------------------------
# Wire schema
# ---------------------------------------------------------------------------

def test_frame_roundtrip():
    payload = {"id": 7, "method": "store.get", "params": {"path": "/a"}}
    frame = wire.encode_frame(payload)
    length = wire.decode_frame_length(frame[:4])
    assert length == len(frame) - 4
    assert wire.decode_frame_body(frame[4:]) == payload


def test_frame_rejects_oversize_and_garbage():
    with pytest.raises(WireError):
        wire.decode_frame_length(b"\xff\xff\xff\xff")
    with pytest.raises(WireError):
        wire.decode_frame_length(b"\x00\x00")
    with pytest.raises(WireError):
        wire.decode_frame_body(b"not json at all {")
    with pytest.raises(WireError):
        wire.decode_frame_body(b"[1, 2]")
    with pytest.raises(WireError):
        wire.b64d("@@not-base64@@")


def test_envelope_roundtrip():
    req = wire.Request(id=3, method="store.put", params={"path": "/x"})
    assert wire.Request.from_wire(req.to_wire()) == req
    ok = wire.Response(id=3, result={"version": 1})
    parsed = wire.Response.from_wire(ok.to_wire())
    assert parsed.ok and parsed.result == {"version": 1}
    bad = wire.Response(id=3, error=wire.WireFault("conflict", "boom"))
    parsed = wire.Response.from_wire(bad.to_wire())
    assert not parsed.ok and parsed.error.code == "conflict"


def test_envelope_rejects_malformed():
    with pytest.raises(WireError):
        wire.Request.from_wire({"params": {}})
    with pytest.raises(WireError):
        wire.Response.from_wire({"id": 1})
    with pytest.raises(WireError):
        wire.Response.from_wire({"id": 1, "ok": False, "error": "nope"})


def test_envelope_rejects_bad_ids():
    """A missing or non-integer envelope id raises instead of silently
    becoming 0 (which would mis-correlate request/response pairs)."""
    with pytest.raises(ValidationError):
        wire.Request.from_wire({"method": "store.get", "params": {}})
    with pytest.raises(ValidationError):
        wire.Request.from_wire(
            {"id": True, "method": "store.get", "params": {}})
    with pytest.raises(ValidationError):
        wire.Request.from_wire(
            {"id": "7", "method": "store.get", "params": {}})
    with pytest.raises(ValidationError):
        wire.Response.from_wire({"ok": True, "result": {}})
    with pytest.raises(ValidationError):
        wire.Response.from_wire({"id": 1.5, "ok": True, "result": {}})


def test_trace_context_only_on_wire_when_set():
    """The trace field is additive: absent from untraced envelopes, so
    pre-trace wire bytes are unchanged."""
    req = wire.Request(id=3, method="store.get", params={"path": "/x"})
    assert "trace" not in req.to_wire()
    traced = wire.Request(id=3, method="store.get", params={"path": "/x"},
                          trace={"id": "abcd", "parent": 7})
    obj = traced.to_wire()
    assert obj["trace"] == {"id": "abcd", "parent": 7}
    assert wire.Request.from_wire(obj) == traced
    with pytest.raises(WireError):
        wire.Request.from_wire(
            {"id": 1, "method": "store.get", "params": {}, "trace": "x"})

    resp = wire.Response(id=3, result={})
    assert "telemetry" not in resp.to_wire()
    shipped = wire.Response(id=3, result={},
                            telemetry={"spans": [], "counters": {}})
    obj = shipped.to_wire()
    assert obj["telemetry"] == {"spans": [], "counters": {}}
    with pytest.raises(WireError):
        wire.Response.from_wire(
            {"id": 1, "ok": True, "result": {}, "telemetry": []})


def test_error_code_mapping_roundtrip():
    for exc in (ConflictError("x"), NotFoundError("y"),
                UnavailableError("z"), ValidationError("v"),
                AccessControlError("a")):
        fault = wire.error_to_wire(exc)
        assert fault.code == error_code(exc)
        rebuilt = wire.wire_to_error(fault)
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)


def test_unknown_error_code_degrades_to_repro_error():
    rebuilt = wire.wire_to_error(wire.WireFault("from-the-future", "m"))
    assert type(rebuilt) is ReproError
    assert "from-the-future" in str(rebuilt)


def test_batch_codec_roundtrip():
    batch = (CloudBatch()
             .put("/a", b"\x00\xffbin", expected_version=2)
             .delete("/b", ignore_missing=True)
             .put("/c", b""))
    decoded = wire.decode_batch(wire.encode_batch(batch))
    assert decoded.ops == batch.ops


def test_parse_store_url():
    assert parse_store_url("tcp://127.0.0.1:80") == ("127.0.0.1", 80)
    assert parse_store_url("localhost:9999") == ("localhost", 9999)
    for bad in ("", "tcp://", "hostonly", "h:notaport"):
        with pytest.raises(ValidationError):
            parse_store_url(bad)


# ---------------------------------------------------------------------------
# Server + client plumbing
# ---------------------------------------------------------------------------

@pytest.fixture
def served():
    inner = CloudStore()
    server = ServerThread(inner)
    url = server.start()
    store = RemoteCloudStore(url)
    yield inner, server, store
    store.close()
    server.stop()


def _raw_exchange(url, payloads):
    """Speak raw frames to a server; returns the decoded responses."""
    host, port = parse_store_url(url)
    out = []
    with socket.create_connection((host, port), timeout=5) as sock:
        for payload in payloads:
            sock.sendall(wire.encode_frame(payload))
            header = sock.recv(4)
            if len(header) < 4:
                break
            length = wire.decode_frame_length(header)
            body = b""
            while len(body) < length:
                chunk = sock.recv(length - len(body))
                if not chunk:
                    break
                body += chunk
            out.append(wire.decode_frame_body(body))
    return out


def test_handshake_version_mismatch_rejected(served):
    _, server, _ = served
    replies = _raw_exchange(server.url, [
        {"id": 1, "method": "hello",
         "params": {"protocol": 999, "client": "test"}},
    ])
    assert replies and not replies[0]["ok"]
    assert replies[0]["error"]["code"] == "protocol_version"


def test_first_request_must_be_hello(served):
    _, server, _ = served
    replies = _raw_exchange(server.url, [
        {"id": 1, "method": "store.get", "params": {"path": "/x"}},
    ])
    assert replies and not replies[0]["ok"]
    assert replies[0]["error"]["code"] == "wire"


def test_unknown_method_is_wire_error(served):
    _, server, _ = served
    hello = {"id": 1, "method": "hello",
             "params": {"protocol": wire.PROTOCOL_VERSION}}
    replies = _raw_exchange(server.url, [
        hello, {"id": 2, "method": "store.nonsense", "params": {}},
    ])
    assert replies[1]["error"]["code"] == "wire"


def test_server_errors_carry_stable_codes(served):
    _, _, store = served
    with pytest.raises(NotFoundError):
        store.get("/missing")
    store.put("/a", b"x")
    with pytest.raises(ConflictError):
        store.put("/a", b"y", expected_version=9)
    with pytest.raises(StorageError):
        store.put("/../escape", b"z")


def test_client_reports_dead_server_as_unavailable():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()    # nothing listens here any more
    with pytest.raises(UnavailableError):
        connect_store(f"tcp://127.0.0.1:{port}", timeout=2)


def test_client_reconnects_after_server_restart(tmp_path, served):
    inner, server, store = served
    store.put("/a", b"one")
    server.stop()
    with pytest.raises((UnavailableError, StorageError)):
        store.get("/a")
    # Same store, fresh server on a new port; re-point and carry on.
    server2 = ServerThread(inner)
    url2 = server2.start()
    store2 = RemoteCloudStore(url2)
    assert store2.get("/a").data == b"one"
    store2.close()
    server2.stop()


def test_long_poll_wakes_on_mutation(served):
    inner, server, store = served
    watcher = RemoteCloudStore(server.url, poll_wait_ms=10_000)
    cursor = watcher.head_sequence()
    result = {}

    def poll():
        events, cur = watcher.poll_dir("/g", cursor)
        result["events"] = events

    thread = threading.Thread(target=poll)
    thread.start()
    # Condition-wait handshake instead of a fixed sleep: only mutate
    # once the server has actually parked the long-poll (a sleep races
    # the poll RPC's arrival under loaded CI runners).
    assert server.wait_for_poll_waiters(1, timeout=5.0)
    store.put("/g/new", b"x")
    thread.join(timeout=5)
    assert not thread.is_alive()
    # The waiter count proves it blocked; no wall-clock assertion needed.
    assert [e.path for e in result["events"]] == ["/g/new"]
    assert server.poll_waiters == 0
    watcher.close()


def test_long_poll_times_out_empty(served):
    _, server, _ = served
    watcher = RemoteCloudStore(server.url, poll_wait_ms=150)
    start = time.perf_counter()
    events, cursor = watcher.poll_dir("/quiet", 0)
    assert events == [] and cursor == 0
    assert time.perf_counter() - start >= 0.10
    watcher.close()


def test_rpc_metrics_accounted(served):
    _, _, store = served
    store.put("/a", b"payload")
    store.get("/a")
    counters = store.metrics.registry.counters_snapshot()
    assert counters["net.rpc.requests"] >= 2    # put + get
    assert counters["net.rpc.bytes_sent"] > 0
    assert counters["net.rpc.bytes_received"] > 0
    # The CloudMetrics mirror reports payload volume like a local store.
    assert store.metrics.bytes_in == len(b"payload")
    assert store.metrics.bytes_out == len(b"payload")


# ---------------------------------------------------------------------------
# Admin bridge
# ---------------------------------------------------------------------------

def test_admin_bridge_whitelist():
    class Admin:
        def rekey(self, group_id):
            return f"rekeyed {group_id}"

    bridge = AdminBridge(Admin())
    assert bridge.call("rekey", {"group_id": "g"}) == "rekeyed g"
    with pytest.raises(AccessControlError):
        bridge.call("load_group_from_cloud", {"group_id": "g"})
    with pytest.raises(AccessControlError):
        bridge.call("rekey", {"group_id": "g", "sneaky": 1})


def test_admin_call_without_bridge_is_denied(served):
    _, _, store = served
    with pytest.raises(AccessControlError):
        RemoteAdmin(store).rekey("team")


# ---------------------------------------------------------------------------
# End-to-end equivalence: remote == in-process, byte for byte
# ---------------------------------------------------------------------------

GROUP = "team"


def _run_workload(system, store):
    """Seeded create/add/rekey/remove + client-sync workload against
    whatever store the deployment is wired to.  Returns the surviving
    member's group key."""
    system.cloud = store
    system.admin.cloud = store
    admin = system.admin
    admin.create_group(GROUP, ["alice", "bob", "carol"])
    admin.add_user(GROUP, "dave")
    admin.rekey(GROUP)
    admin.remove_user(GROUP, "bob")
    client = system.make_client(GROUP, "alice")
    client.sync()
    return client.current_group_key()


def _fresh_system(seed):
    from repro import quickstart_system

    return quickstart_system(partition_capacity=2, params="toy64",
                             rng=DeterministicRng(seed),
                             auto_repartition=False)


def test_remote_workload_is_byte_identical_to_in_process():
    seed = "net-equivalence"
    local = _fresh_system(seed)
    local_inner = local.cloud
    local_key = _run_workload(local, local_inner)
    local.close()

    remote_sys = _fresh_system(seed)
    remote_inner = remote_sys.cloud
    server = ServerThread(remote_inner)
    store = RemoteCloudStore(server.start())
    remote_key = _run_workload(remote_sys, store)
    store.close()
    server.stop()
    remote_sys.close()

    assert remote_key == local_key
    assert cloud_digest(remote_inner) == cloud_digest(local_inner)
    # Identical RNG streams: even versions and sealed blobs agree, so
    # the raw object maps match exactly, not just the digest.
    local_view = {o.path: (o.data, o.version)
                  for o in local_inner.adversary_view()}
    remote_view = {o.path: (o.data, o.version)
                   for o in remote_inner.adversary_view()}
    assert remote_view == local_view


def test_workload_under_injected_outages_converges():
    """The PR-5 fault/retry layers compose with the network store: a
    FaultyCloudStore over a RemoteCloudStore injects client-side
    outages and timeouts, the admin's and client's RetryPolicy absorb
    them, and the result matches the fault-free in-process run."""
    from repro.faults import FaultyCloudStore

    seed = "net-faults"
    local = _fresh_system(seed)
    local_inner = local.cloud
    local_key = _run_workload(local, local_inner)
    local.close()

    remote_sys = _fresh_system(seed)
    remote_inner = remote_sys.cloud
    server = ServerThread(remote_inner)
    store = RemoteCloudStore(server.start())
    # The pipeline batches each admin op into one commit, so the
    # workload only consults the injector a handful of times; crank the
    # rates so outages deterministically fire within those draws.
    injector = FaultInjector(FaultPlan(seed="outage-seed",
                                       store_error_rate=0.45,
                                       store_timeout_rate=0.30,
                                       latency_spike_rate=0.30))
    faulty = FaultyCloudStore(store, injector)
    remote_key = _run_workload(remote_sys, faulty)
    assert injector.log, "the plan should have injected something"
    store.close()
    server.stop()
    remote_sys.close()

    assert remote_key == local_key
    assert cloud_digest(remote_inner) == cloud_digest(local_inner)


# ---------------------------------------------------------------------------
# Mid-commit server kill: ambiguous outcome, exactly-once recovery
# ---------------------------------------------------------------------------

def test_server_killed_mid_commit_recovers_exactly_once(tmp_path):
    root = tmp_path / "store"
    inner = FileCloudStore(root)
    inner.put("/g/existing", b"before")
    server = ServerThread(inner)
    store = RemoteCloudStore(server.start())
    assert store.get("/g/existing").data == b"before"

    # Crash deterministically at the first crash point the commit hits
    # (cloud.commit.journaled — after the journal is durable, before
    # the data files are written).
    injector = FaultInjector(FaultPlan(seed="kill", crash_rate=1.0,
                                       max_crashes=1))
    batch = CloudBatch().put("/g/a", b"one").put("/g/b", b"two")
    with use_faults(injector):
        with pytest.raises(StorageError) as excinfo:
            store.commit(batch)
    # Not the retry-safe kind: the outcome is genuinely unknown.
    assert not isinstance(excinfo.value, UnavailableError)
    assert "outcome unknown" in str(excinfo.value)
    assert injector.history() == [("crash", "cloud.commit.journaled")]
    crash = server.join_crashed()
    assert crash.point == "cloud.commit.journaled"

    # The dead server's connections are gone.
    with pytest.raises((UnavailableError, StorageError)):
        store.get("/g/existing")
    store.close()

    # "Restart the process": reopen the directory (journal roll-forward
    # applies the committed batch exactly once) and serve it again.
    reopened = FileCloudStore(root)
    server2 = ServerThread(reopened)
    store2 = RemoteCloudStore(server2.start())
    assert store2.get("/g/a").data == b"one"
    assert store2.get("/g/b").data == b"two"
    assert store2.get("/g/existing").data == b"before"
    # Versions prove single application.
    assert store2.get("/g/a").version == 1
    assert store2.get("/g/b").version == 1
    store2.close()
    server2.stop()


def test_chaos_harness_converges_over_network():
    """The chaos harness's network mode: the chaos run's store lives
    behind a real StoreServer (crashes kill the serving process), and
    the final state must still be byte-identical to the in-process
    fault-free reference."""
    from repro.workloads.chaos import run_chaos

    report = run_chaos(FaultPlan.store_faults("net-chaos"), ops=6,
                       pool=6, initial=3, capacity=4, seed="net-chaos",
                       remote=True)
    assert report.converged, report.summary()
