"""The package root's public surface must match its documentation.

``docs/API.md`` carries a machine-readable block (between the
``repro-public-surface`` markers) listing exactly what ``repro.__all__``
exports.  This test fails whenever one drifts from the other, forcing
doc updates to ride along with API changes."""

import re
from pathlib import Path

import repro

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"

_BLOCK = re.compile(
    r"<!-- begin repro-public-surface -->\s*```\w*\n(.*?)```\s*"
    r"<!-- end repro-public-surface -->",
    re.DOTALL,
)


def documented_surface() -> list:
    match = _BLOCK.search(API_MD.read_text("utf-8"))
    assert match, (
        "docs/API.md must contain the repro-public-surface block "
        "(<!-- begin repro-public-surface --> ... <!-- end ... -->)"
    )
    return [line.strip() for line in match.group(1).splitlines()
            if line.strip()]


def test_all_matches_docs():
    documented = documented_surface()
    actual = list(repro.__all__)
    assert documented == actual, (
        "repro.__all__ and the docs/API.md public-surface block have "
        f"drifted.\n  only in docs: {sorted(set(documented) - set(actual))}"
        f"\n  only in __all__: {sorted(set(actual) - set(documented))}"
        f"\n  (or the ordering differs)"
    )


def test_all_names_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} listed but missing"


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))
