"""Tests for repro.faults: deterministic plans, the injector, the
FaultyCloudStore decorator, RetryPolicy, and worker-kill recovery."""

import pytest

from repro.cloud import CloudStore
from repro.cloud.store import CloudBatch
from repro.errors import (
    CrashError,
    NotFoundError,
    ParallelError,
    StoreTimeoutError,
    UnavailableError,
)
from repro.faults import (
    READ_OPS,
    FaultInjector,
    FaultPlan,
    FaultyCloudStore,
    RetryPolicy,
    active,
    crash_point,
    install,
    use_faults,
)
from repro.obs.metrics import MetricRegistry


def drive_injector(injector, rounds=200):
    """Consult every injection door in a fixed pattern, swallowing the
    injected exceptions, and return the history."""
    for i in range(rounds):
        try:
            injector.store_fault("put", f"/g/p{i % 4}")
        except UnavailableError:
            pass
        try:
            injector.store_fault("get", f"/g/p{i % 4}")
        except UnavailableError:  # StoreTimeoutError included
            pass
        try:
            injector.crash_point("admin.plan.pre_commit")
        except CrashError:
            pass
        injector.take_worker_kill(8)
        injector.take_enclave_restart()
    return injector.history()


class TestFaultPlan:
    def test_disabled_plan_injects_nothing(self):
        injector = FaultInjector(FaultPlan.disabled())
        assert drive_injector(injector) == []

    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan.full_chaos("replay-me")
        first = drive_injector(FaultInjector(plan))
        second = drive_injector(FaultInjector(plan))
        assert first == second
        assert first  # the profile actually fires at these rates

    def test_different_seeds_differ(self):
        a = drive_injector(FaultInjector(FaultPlan.full_chaos("a")))
        b = drive_injector(FaultInjector(FaultPlan.full_chaos("b")))
        assert a != b

    def test_categories_draw_independent_streams(self):
        """Enabling one category must not perturb another's schedule."""
        base = FaultPlan(seed="iso", store_error_rate=0.1)
        with_kills = FaultPlan(seed="iso", store_error_rate=0.1,
                               worker_kill_rate=0.5, max_worker_kills=100)
        errors_only = [
            f for f in drive_injector(FaultInjector(with_kills))
            if f[0] == "store.unavailable"
        ]
        assert errors_only == drive_injector(FaultInjector(base))


class TestFaultInjector:
    def test_crash_cap(self):
        plan = FaultPlan(seed="s", crash_rate=1.0, max_crashes=2)
        injector = FaultInjector(plan)
        for _ in range(2):
            with pytest.raises(CrashError):
                injector.crash_point("x")
        injector.crash_point("x")  # cap reached: no-op
        assert injector.history() == [("crash", "x"), ("crash", "x")]

    def test_crash_error_carries_point(self):
        injector = FaultInjector(FaultPlan(seed="s", crash_rate=1.0))
        with pytest.raises(CrashError) as excinfo:
            injector.crash_point("cloud.commit.apply")
        assert excinfo.value.point == "cloud.commit.apply"

    def test_worker_kill_consumed_and_capped(self):
        plan = FaultPlan(seed="s", worker_kill_rate=1.0, max_worker_kills=1)
        injector = FaultInjector(plan)
        index = injector.take_worker_kill(8)
        assert index is not None and 0 <= index < 8
        assert injector.take_worker_kill(8) is None

    def test_enclave_restart_capped(self):
        plan = FaultPlan(seed="s", enclave_restart_rate=1.0,
                         max_enclave_restarts=2)
        injector = FaultInjector(plan)
        taken = sum(injector.take_enclave_restart() for _ in range(10))
        assert taken == 2

    def test_timeouts_only_on_reads(self):
        plan = FaultPlan(seed="s", store_timeout_rate=1.0)
        injector = FaultInjector(plan)
        for op in sorted(READ_OPS):
            with pytest.raises(StoreTimeoutError):
                injector.store_fault(op, "/p")
        # Writes are never ambiguous: no timeout may be injected there.
        for op in ("put", "delete", "commit"):
            assert injector.store_fault(op, "/p") == 0.0

    def test_latency_spikes_accounted_not_slept(self):
        plan = FaultPlan(seed="s", latency_spike_rate=1.0,
                         latency_spike_ms=123.0)
        injector = FaultInjector(plan)
        assert injector.store_fault("get", "/p") == 123.0
        snapshot = injector.registry.snapshot()
        assert snapshot["faults.latency_ms"] == 123.0
        assert snapshot["faults.latency_spikes"] == 1

    def test_metrics_count_by_category(self):
        plan = FaultPlan.full_chaos("metrics")
        injector = FaultInjector(plan)
        history = drive_injector(injector)
        snapshot = injector.registry.snapshot()
        assert snapshot["faults.injected"] == len(history)
        kinds = [kind for kind, _ in history]
        assert snapshot["faults.store_errors"] == kinds.count("store.unavailable")
        assert snapshot["faults.crashes"] == kinds.count("crash")


class TestAmbientInstall:
    def test_crash_point_is_noop_without_injector(self):
        install(None)
        crash_point("anywhere")  # must not raise
        assert active() is None

    def test_use_faults_scopes_and_restores(self):
        injector = FaultInjector(FaultPlan(seed="s", crash_rate=1.0))
        assert active() is None
        with use_faults(injector) as installed:
            assert installed is injector
            assert active() is injector
            with pytest.raises(CrashError):
                crash_point("scoped")
        assert active() is None


class TestFaultyCloudStore:
    def make(self, plan):
        inner = CloudStore()
        injector = FaultInjector(plan)
        return FaultyCloudStore(inner, injector), inner, injector

    def test_transparent_when_disabled(self):
        store, inner, _ = self.make(FaultPlan.disabled())
        store.put("/g/a", b"data")
        assert store.get("/g/a").data == b"data"
        assert store.exists("/g/a")
        assert store.list_dir("/g") == ["/g/a"]
        events, cursor = store.poll_dir("/g")
        assert len(events) == 1 and cursor == 1
        store.delete("/g/a")
        assert not inner.exists("/g/a")

    def test_injected_outage_never_reaches_the_store(self):
        store, inner, _ = self.make(FaultPlan(seed="s", store_error_rate=1.0))
        with pytest.raises(UnavailableError):
            store.put("/g/a", b"data")
        assert not inner.exists("/g/a")

    def test_injected_timeout_on_reads(self):
        store, inner, _ = self.make(FaultPlan(seed="s", store_timeout_rate=1.0))
        inner.put("/g/a", b"data")
        with pytest.raises(StoreTimeoutError):
            store.get("/g/a")
        with pytest.raises(StoreTimeoutError):
            store.poll_dir("/g")
        # Writes still go through (timeouts are read-only faults).
        store.put("/g/b", b"more")
        assert inner.exists("/g/b")

    def test_commit_guarded_as_one_round_trip(self):
        store, inner, injector = self.make(
            FaultPlan(seed="s", store_error_rate=1.0))
        batch = CloudBatch()
        batch.put("/g/a", b"one")
        batch.put("/g/b", b"two")
        with pytest.raises(UnavailableError):
            store.commit(batch)
        assert not inner.exists("/g/a") and not inner.exists("/g/b")
        assert injector.history() == [("store.unavailable", "commit")]

    def test_inspection_interfaces_unguarded(self):
        store, inner, _ = self.make(FaultPlan(seed="s", store_error_rate=1.0))
        inner.put("/g/a", b"data")
        assert [o.path for o in store.adversary_view()] == ["/g/a"]
        assert store.total_stored_bytes() == 4
        assert store.metrics is inner.metrics


class TestRetryPolicy:
    def test_first_try_success_costs_nothing(self):
        policy = RetryPolicy(seed="t")
        assert policy.run(lambda: 42) == 42
        assert policy.slept_ms == 0.0
        assert policy.registry.snapshot()["retry.attempts"] == 0

    def test_retries_until_success(self):
        policy = RetryPolicy(max_attempts=5, seed="t")
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise UnavailableError("transient")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert len(calls) == 3
        assert policy.registry.snapshot()["retry.attempts"] == 2
        assert policy.slept_ms > 0.0

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, seed="t")
        calls = []

        def always_down():
            calls.append(1)
            raise UnavailableError("still down")

        with pytest.raises(UnavailableError, match="still down"):
            policy.run(always_down)
        assert len(calls) == 3
        assert policy.registry.snapshot()["retry.exhausted"] == 1

    def test_non_retryable_errors_pass_through(self):
        policy = RetryPolicy(max_attempts=5, seed="t")
        calls = []

        def wrong_kind():
            calls.append(1)
            raise NotFoundError("no such object")

        with pytest.raises(NotFoundError):
            policy.run(wrong_kind)
        assert len(calls) == 1

    def test_backoff_capped_exponential(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=50.0, multiplier=2.0,
                             jitter=0.0, seed="t")
        assert [policy.delay_ms(n) for n in range(1, 6)] == \
            [10.0, 20.0, 40.0, 50.0, 50.0]

    def test_jitter_deterministic_per_seed(self):
        a = RetryPolicy(jitter=0.5, seed="j")
        b = RetryPolicy(jitter=0.5, seed="j")
        c = RetryPolicy(jitter=0.5, seed="other")
        series_a = [a.delay_ms(1) for _ in range(8)]
        series_b = [b.delay_ms(1) for _ in range(8)]
        series_c = [c.delay_ms(1) for _ in range(8)]
        assert series_a == series_b
        assert series_a != series_c
        for delay in series_a:
            assert 7.5 <= delay <= 12.5  # base 10ms, jitter 0.5

    def test_on_retry_hook_sees_attempt_numbers(self):
        policy = RetryPolicy(max_attempts=4, seed="t")
        seen = []

        def flaky():
            if len(seen) < 2:
                raise UnavailableError("x")
            return "done"

        policy.run(flaky, on_retry=lambda exc, n: seen.append(n))
        assert seen == [1, 2]

    def test_retry_absorbs_injected_store_faults(self):
        """The integration the subsystem exists for: a retried put lands
        exactly once despite scheduled outages."""
        plan = FaultPlan(seed="absorb", store_error_rate=0.4)
        store = FaultyCloudStore(CloudStore(), FaultInjector(plan))
        policy = RetryPolicy(max_attempts=10, seed="absorb")
        for i in range(20):
            policy.run(lambda i=i: store.put(f"/g/p{i}", b"x"))
        assert store.inner.total_stored_bytes("/g") == 20


class TestWorkerKillRecovery:
    def run_parallel(self, plan, registry):
        from repro.par.pool import WorkerPool

        pool = WorkerPool(workers=2, registry=registry)
        try:
            with use_faults(FaultInjector(plan)):
                return pool.run(_square, list(range(8)))
        finally:
            pool.close()

    def test_respawn_preserves_results(self):
        registry = MetricRegistry()
        plan = FaultPlan(seed="kill", worker_kill_rate=1.0,
                         max_worker_kills=1)
        results = self.run_parallel(plan, registry)
        assert results == [n * n for n in range(8)]
        snapshot = registry.snapshot()
        assert snapshot["par.respawns"] == 1
        assert snapshot["par.failures"] == 0
        # Telemetry is single-counted: only the clean re-dispatch lands.
        assert snapshot["par.task.seconds.count"] == 8

    def test_serial_parallel_identity_across_kill(self):
        from repro.par.pool import WorkerPool

        serial_pool = WorkerPool(workers=1)
        serial = serial_pool.run(_square, list(range(8)))
        plan = FaultPlan(seed="kill", worker_kill_rate=1.0,
                         max_worker_kills=1)
        parallel = self.run_parallel(plan, MetricRegistry())
        assert parallel == serial

    def test_second_death_raises_parallel_error(self):
        from repro.par import pool as pool_mod
        from repro.par.pool import WorkerPool

        registry = MetricRegistry()
        pool = WorkerPool(workers=2, registry=registry)
        original = pool_mod._run_instrumented
        try:
            pool_mod._run_instrumented = _die_always
            with pytest.raises(ParallelError, match="kept dying"):
                pool.run(_square, list(range(4)))
        finally:
            pool_mod._run_instrumented = original
            pool.close()
        snapshot = registry.snapshot()
        assert snapshot["par.respawns"] == 1
        assert snapshot["par.failures"] == 1


def _square(n):
    return n * n


def _die_always(shipment):
    import os

    os._exit(113)
