"""Adaptive partition sizing tests (future-work extension)."""

import math

import pytest

from repro.core.adaptive import (
    AdaptiveAdministrator,
    AdaptivePolicy,
    CoefficientFit,
    fit_linear_cost,
)
from repro.errors import ParameterError
from tests.conftest import make_system


class TestPolicyMath:
    def test_more_revocations_grow_partitions(self):
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**6)
        low = policy.optimal_capacity(10_000, revocation_rate=0.01,
                                      decrypt_rate=1.0)
        high = policy.optimal_capacity(10_000, revocation_rate=1.0,
                                       decrypt_rate=1.0)
        assert high > low

    def test_more_decrypts_shrink_partitions(self):
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**6)
        few = policy.optimal_capacity(10_000, 1.0, decrypt_rate=0.1)
        many = policy.optimal_capacity(10_000, 1.0, decrypt_rate=100.0)
        assert many < few

    def test_cube_root_closed_form(self):
        policy = AdaptivePolicy(c_rekey=1.0, c_decrypt=1.0,
                                min_capacity=1, max_capacity=10**9)
        # m* = cbrt(r·n/(2·d)) with unit coefficients.
        m = policy.optimal_capacity(2_000, 1.0, 1.0)
        assert m == round((2_000 / 2) ** (1 / 3))

    def test_clamping(self):
        policy = AdaptivePolicy(min_capacity=10, max_capacity=100)
        assert policy.optimal_capacity(10, 0.001, 1000.0) == 10
        assert policy.optimal_capacity(10**6, 1000.0, 0.001) == 100

    def test_degenerate_rates(self):
        policy = AdaptivePolicy(min_capacity=4, max_capacity=100)
        assert policy.optimal_capacity(50, 0.0, 1.0) == 4
        assert policy.optimal_capacity(50, 1.0, 0.0) == 50

    def test_invalid_inputs(self):
        policy = AdaptivePolicy()
        with pytest.raises(ParameterError):
            policy.optimal_capacity(0, 1.0, 1.0)
        with pytest.raises(ParameterError):
            policy.optimal_capacity(10, -1.0, 1.0)

    def test_hysteresis(self):
        policy = AdaptivePolicy(hysteresis=2.0)
        assert not policy.should_repartition(100, 150)
        assert policy.should_repartition(100, 300)
        assert policy.should_repartition(100, 40)

    def test_hysteresis_boundary_exactly_at_factor(self):
        # The band is closed: exactly hysteresis× (or 1/hysteresis×)
        # does NOT trigger — only strict drift past the band does.
        policy = AdaptivePolicy(hysteresis=1.5)
        assert not policy.should_repartition(100, 150)   # exactly 1.5×
        assert policy.should_repartition(100, 151)
        assert not policy.should_repartition(150, 100)   # exactly 1/1.5
        assert policy.should_repartition(151, 100)

    def test_min_equals_max_capacity_pins_the_optimum(self):
        policy = AdaptivePolicy(min_capacity=32, max_capacity=32)
        # Whatever the workload mix says, the clamp wins — and a pinned
        # capacity can never drift past the hysteresis band.
        for rev, dec in [(0.001, 1000.0), (1000.0, 0.001),
                         (1.0, 1.0), (0.0, 1.0), (1.0, 0.0)]:
            optimal = policy.optimal_capacity(10_000, rev, dec)
            assert optimal == 32
            assert not policy.should_repartition(32, optimal)

    def test_recommendation_stable_under_noisy_rates(self):
        # ±20% noise on both rates moves the cube-root optimum by at
        # most (1.2/0.8)^(1/3) ≈ 1.14× — inside the default 1.5×
        # hysteresis band, so a converged group must never thrash.
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**6)
        base = policy.optimal_capacity(100_000, 0.35, 2.0)
        for rev_noise in (0.8, 0.9, 1.0, 1.1, 1.2):
            for dec_noise in (0.8, 0.9, 1.0, 1.1, 1.2):
                noisy = policy.optimal_capacity(
                    100_000, 0.35 * rev_noise, 2.0 * dec_noise)
                assert not policy.should_repartition(base, noisy)


class TestCalibration:
    def test_fit_recovers_a_linear_cost(self):
        fit = fit_linear_cost([(1.0, 0.012), (2.0, 0.022),
                               (4.0, 0.042), (8.0, 0.082)])
        assert fit.coefficient == pytest.approx(0.01)
        assert fit.intercept == pytest.approx(0.002)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)
        assert "4 samples" in fit.describe()

    def test_fit_clamps_negative_slope(self):
        fit = fit_linear_cost([(1.0, 0.05), (2.0, 0.04), (3.0, 0.03)])
        assert fit.coefficient == 0.0

    def test_fit_rejects_degenerate_samples(self):
        with pytest.raises(ParameterError):
            fit_linear_cost([(1.0, 0.5)])
        with pytest.raises(ParameterError):
            fit_linear_cost([(2.0, 0.5), (2.0, 0.6)])

    def test_calibrated_policy_uses_measured_coefficients(self):
        rekey = fit_linear_cost([(1.0, 0.011), (2.0, 0.021)])
        decrypt = fit_linear_cost([(64.0, 0.001), (256.0, 0.004)])
        policy = AdaptivePolicy.calibrated(rekey, decrypt,
                                           min_capacity=1,
                                           max_capacity=10**9)
        assert policy.c_rekey == rekey.coefficient
        assert policy.c_decrypt == decrypt.coefficient
        expected = round((0.35 * policy.c_rekey * 10_000
                          / (2 * 2.0 * policy.c_decrypt)) ** (1 / 3))
        assert policy.optimal_capacity(10_000, 0.35, 2.0) == expected

    def test_calibrated_rejects_zero_slope(self):
        flat = fit_linear_cost([(1.0, 0.5), (2.0, 0.5)])
        steep = fit_linear_cost([(1.0, 0.1), (2.0, 0.2)])
        with pytest.raises(ParameterError):
            AdaptivePolicy.calibrated(flat, steep)
        with pytest.raises(ParameterError):
            AdaptivePolicy.calibrated(steep, flat)

    def test_cutoff_curve_against_sqrt_rule(self):
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**9)
        curve = policy.cutoff_curve([10_000, 100_000, 1_000_000],
                                    revocation_rate=0.35,
                                    decrypt_rate=2.0)
        assert [p.group_size for p in curve] == [10_000, 100_000,
                                                 1_000_000]
        for point in curve:
            assert point.sqrt_rule == round(math.sqrt(point.group_size))
            assert point.optimal == policy.optimal_capacity(
                point.group_size, 0.35, 2.0)
            assert point.ratio == pytest.approx(
                point.optimal / point.sqrt_rule)
        # m* grows as cbrt(n): the ratio to sqrt(n) must fall with n.
        assert curve[0].ratio > curve[1].ratio > curve[2].ratio

    def test_with_capacity_bounds_keeps_coefficients(self):
        policy = AdaptivePolicy(c_rekey=1.0, c_decrypt=1.0,
                                min_capacity=8, max_capacity=64)
        unclamped = policy.with_capacity_bounds(1, 10**9)
        assert unclamped.c_rekey == policy.c_rekey
        assert unclamped.optimal_capacity(2_000, 1.0, 1.0) == round(
            (2_000 / 2) ** (1 / 3))


class TestAdaptiveAdministrator:
    def test_resize_triggered_by_decrypt_heavy_workload(self):
        system = make_system("adaptive", capacity=8, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=1.2)
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=4)
        adaptive.create_group("g", [f"u{i}" for i in range(8)])
        # Decrypt-heavy workload: the optimum collapses to min capacity.
        adaptive.record_decrypt("g", count=400)
        for i in range(4):
            adaptive.add_user("g", f"extra{i}")
        assert adaptive.resizes >= 1
        state = system.admin.group_state("g")
        assert state.table.capacity < 8
        # Group still functional after the resize.
        client = system.make_client("g", "u0")
        client.sync()
        client.current_group_key()

    def test_no_resize_without_signal(self):
        system = make_system("adaptive2", capacity=4, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=100.0)  # effectively frozen
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=2)
        adaptive.create_group("g", ["a", "b", "c"])
        adaptive.add_user("g", "d")
        adaptive.add_user("g", "e")
        assert adaptive.resizes == 0

    def test_review_interval_respected(self):
        system = make_system("adaptive3", capacity=4, system_bound=16,
                             auto_repartition=False)
        adaptive = AdaptiveAdministrator(system.admin, review_every=1000)
        adaptive.create_group("g", ["a", "b"])
        adaptive.record_decrypt("g", count=10)
        adaptive.add_user("g", "c")
        assert adaptive.resizes == 0

    def test_invalid_review_interval(self):
        system = make_system("adaptive4")
        with pytest.raises(ParameterError):
            AdaptiveAdministrator(system.admin, review_every=0)

    def test_trajectory_records_every_review(self):
        system = make_system("adaptive5", capacity=8, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=1.2)
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=4)
        adaptive.create_group("g", [f"u{i}" for i in range(8)])
        adaptive.record_decrypt("g", count=400)
        for i in range(4):
            adaptive.add_user("g", f"extra{i}")
        assert len(adaptive.trajectory) == 1
        point = adaptive.trajectory[0]
        assert point.group_id == "g"
        assert point.current_capacity == 8
        assert point.repartitioned
        assert point.optimal_capacity == system.admin.group_state(
            "g").table.capacity
        summary = point.summary()
        assert summary["group"] == "g" and summary["repartitioned"]

    def test_trajectory_includes_non_repartitioning_reviews(self):
        system = make_system("adaptive6", capacity=4, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=100.0)  # never triggers
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=2)
        adaptive.create_group("g", ["a", "b", "c"])
        adaptive.add_user("g", "d")
        adaptive.add_user("g", "e")
        assert adaptive.resizes == 0
        assert len(adaptive.trajectory) == 1
        assert not adaptive.trajectory[0].repartitioned

    def test_trajectory_is_bounded(self):
        system = make_system("adaptive7", capacity=4, system_bound=16,
                             auto_repartition=False)
        adaptive = AdaptiveAdministrator(system.admin, review_every=1)
        adaptive.MAX_TRAJECTORY = 3
        adaptive.create_group("g", ["a", "b", "c", "d"])
        for i in range(6):
            adaptive.add_user("g", f"n{i}")
        assert len(adaptive.trajectory) == 3
        # FIFO: the retained points are the most recent reviews.
        assert adaptive.trajectory[-1].group_size == 10
