"""Adaptive partition sizing tests (future-work extension)."""

import pytest

from repro.core.adaptive import AdaptiveAdministrator, AdaptivePolicy
from repro.errors import ParameterError
from tests.conftest import make_system


class TestPolicyMath:
    def test_more_revocations_grow_partitions(self):
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**6)
        low = policy.optimal_capacity(10_000, revocation_rate=0.01,
                                      decrypt_rate=1.0)
        high = policy.optimal_capacity(10_000, revocation_rate=1.0,
                                       decrypt_rate=1.0)
        assert high > low

    def test_more_decrypts_shrink_partitions(self):
        policy = AdaptivePolicy(min_capacity=1, max_capacity=10**6)
        few = policy.optimal_capacity(10_000, 1.0, decrypt_rate=0.1)
        many = policy.optimal_capacity(10_000, 1.0, decrypt_rate=100.0)
        assert many < few

    def test_cube_root_closed_form(self):
        policy = AdaptivePolicy(c_rekey=1.0, c_decrypt=1.0,
                                min_capacity=1, max_capacity=10**9)
        # m* = cbrt(r·n/(2·d)) with unit coefficients.
        m = policy.optimal_capacity(2_000, 1.0, 1.0)
        assert m == round((2_000 / 2) ** (1 / 3))

    def test_clamping(self):
        policy = AdaptivePolicy(min_capacity=10, max_capacity=100)
        assert policy.optimal_capacity(10, 0.001, 1000.0) == 10
        assert policy.optimal_capacity(10**6, 1000.0, 0.001) == 100

    def test_degenerate_rates(self):
        policy = AdaptivePolicy(min_capacity=4, max_capacity=100)
        assert policy.optimal_capacity(50, 0.0, 1.0) == 4
        assert policy.optimal_capacity(50, 1.0, 0.0) == 50

    def test_invalid_inputs(self):
        policy = AdaptivePolicy()
        with pytest.raises(ParameterError):
            policy.optimal_capacity(0, 1.0, 1.0)
        with pytest.raises(ParameterError):
            policy.optimal_capacity(10, -1.0, 1.0)

    def test_hysteresis(self):
        policy = AdaptivePolicy(hysteresis=2.0)
        assert not policy.should_repartition(100, 150)
        assert policy.should_repartition(100, 300)
        assert policy.should_repartition(100, 40)


class TestAdaptiveAdministrator:
    def test_resize_triggered_by_decrypt_heavy_workload(self):
        system = make_system("adaptive", capacity=8, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=1.2)
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=4)
        adaptive.create_group("g", [f"u{i}" for i in range(8)])
        # Decrypt-heavy workload: the optimum collapses to min capacity.
        adaptive.record_decrypt("g", count=400)
        for i in range(4):
            adaptive.add_user("g", f"extra{i}")
        assert adaptive.resizes >= 1
        state = system.admin.group_state("g")
        assert state.table.capacity < 8
        # Group still functional after the resize.
        client = system.make_client("g", "u0")
        client.sync()
        client.current_group_key()

    def test_no_resize_without_signal(self):
        system = make_system("adaptive2", capacity=4, system_bound=16,
                             auto_repartition=False)
        policy = AdaptivePolicy(min_capacity=2, max_capacity=16,
                                hysteresis=100.0)  # effectively frozen
        adaptive = AdaptiveAdministrator(system.admin, policy,
                                         review_every=2)
        adaptive.create_group("g", ["a", "b", "c"])
        adaptive.add_user("g", "d")
        adaptive.add_user("g", "e")
        assert adaptive.resizes == 0

    def test_review_interval_respected(self):
        system = make_system("adaptive3", capacity=4, system_bound=16,
                             auto_repartition=False)
        adaptive = AdaptiveAdministrator(system.admin, review_every=1000)
        adaptive.create_group("g", ["a", "b"])
        adaptive.record_decrypt("g", count=10)
        adaptive.add_user("g", "c")
        assert adaptive.resizes == 0

    def test_invalid_review_interval(self):
        system = make_system("adaptive4")
        with pytest.raises(ParameterError):
            AdaptiveAdministrator(system.admin, review_every=0)
