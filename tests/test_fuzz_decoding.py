"""Fuzz tests: decoders must fail closed with library exceptions.

Everything that parses attacker-reachable bytes (cloud objects, wire
encodings) must raise a :class:`~repro.errors.ReproError` subclass on
malformed input — never `UnicodeDecodeError`, `struct.error`, `KeyError`
or similar, which callers do not guard against.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ibbe
from repro.core.metadata import GroupDescriptor, PartitionRecord
from repro.core.oplog import OpLogEntry
from repro.core.serialize import Reader, split_signed
from repro.crypto import ecdsa, ecies
from repro.crypto.rng import DeterministicRng
from repro.ec.curve import Point
from repro.ec.p256 import P256
from repro.errors import ReproError
from repro.pairing.group import G1Element, GTElement

KEY = ecdsa.generate_keypair(DeterministicRng("fuzz")).public_key()

junk = st.binary(max_size=200)


def _assert_fails_closed(fn, data):
    try:
        fn(data)
    except ReproError:
        pass
    except Exception as exc:  # noqa: BLE001 — that's the point of the test
        pytest.fail(f"leaked non-library exception {type(exc).__name__}: {exc}")


class TestMetadataFuzz:
    @given(junk)
    @settings(max_examples=60)
    def test_partition_record(self, data):
        _assert_fails_closed(
            lambda d: PartitionRecord.verify_and_decode(d, KEY), data
        )

    @given(junk)
    @settings(max_examples=60)
    def test_group_descriptor(self, data):
        _assert_fails_closed(
            lambda d: GroupDescriptor.verify_and_decode(d, KEY), data
        )

    @given(junk)
    @settings(max_examples=40)
    def test_oplog_entry(self, data):
        _assert_fails_closed(OpLogEntry.decode, data)

    @given(junk)
    @settings(max_examples=40)
    def test_split_signed(self, data):
        _assert_fails_closed(split_signed, data)

    @given(junk)
    @settings(max_examples=40)
    def test_reader_str_field(self, data):
        _assert_fails_closed(lambda d: Reader(d).str_field(), data)


class TestCryptoFuzz:
    @given(junk)
    @settings(max_examples=40)
    def test_point_decode(self, data):
        _assert_fails_closed(lambda d: Point.decode(P256, d), data)

    @given(data=junk)
    @settings(max_examples=40)
    def test_g1_decode(self, group, data):
        _assert_fails_closed(lambda d: G1Element.decode(group, d), data)

    @given(data=junk)
    @settings(max_examples=40)
    def test_gt_decode(self, group, data):
        _assert_fails_closed(lambda d: GTElement.decode(group, d), data)

    @given(data=junk)
    @settings(max_examples=40)
    def test_ibbe_ciphertext_decode(self, group, data):
        _assert_fails_closed(
            lambda d: ibbe.IbbeCiphertext.decode(group, d), data
        )

    @given(data=junk)
    @settings(max_examples=40)
    def test_ibbe_public_key_decode(self, group, data):
        _assert_fails_closed(
            lambda d: ibbe.IbbePublicKey.decode(d, group), data
        )

    @given(junk)
    @settings(max_examples=40)
    def test_ecies_decrypt(self, data):
        key = ecies.generate_keypair(DeterministicRng("fuzz-ecies"))
        _assert_fails_closed(key.decrypt, data)

    @given(junk)
    @settings(max_examples=40)
    def test_ecdsa_pubkey_decode(self, data):
        _assert_fails_closed(ecdsa.EcdsaPublicKey.decode, data)
