"""Field-axiom and operational tests for F_p and F_p²."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import MathError, ParameterError
from repro.fields import Fp, Fp2
from repro.fields.fp2 import fp2_conj, fp2_inv, fp2_mul, fp2_pow, fp2_sqr

P = (1 << 127) - 1  # Mersenne prime, ≡ 3 (mod 4)
F = Fp(P)
F2 = Fp2(P)

elems = st.integers(min_value=0, max_value=P - 1)
pairs = st.tuples(elems, elems)


class TestFpAxioms:
    @given(elems, elems, elems)
    @settings(max_examples=30)
    def test_ring_axioms(self, a, b, c):
        x, y, z = F(a), F(b), F(c)
        assert (x + y) + z == x + (y + z)
        assert x + y == y + x
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @given(elems)
    @settings(max_examples=30)
    def test_additive_inverse(self, a):
        x = F(a)
        assert (x + (-x)).is_zero()

    @given(elems.filter(lambda v: v != 0))
    @settings(max_examples=30)
    def test_multiplicative_inverse(self, a):
        x = F(a)
        assert x * x.inverse() == F.one()
        assert x / x == 1

    @given(elems, st.integers(min_value=0, max_value=50))
    @settings(max_examples=30)
    def test_pow_matches_repeated_mul(self, a, e):
        x = F(a)
        expected = F.one()
        for _ in range(e):
            expected = expected * x
        assert x ** e == expected

    def test_negative_exponent(self):
        x = F(17)
        assert x ** -1 == x.inverse()
        assert x ** -3 == (x ** 3).inverse()


class TestFpOps:
    def test_sqrt_of_square(self):
        x = F(123456789)
        root = (x * x).sqrt()
        assert root * root == x * x

    def test_sqrt_non_residue_raises(self):
        non_residue = next(
            v for v in range(2, 100) if not F(v).is_square()
        )
        with pytest.raises(MathError):
            F(non_residue).sqrt()

    def test_mixed_field_arithmetic_raises(self):
        other = Fp(97)
        with pytest.raises(MathError):
            F(1) + other(1)

    def test_int_coercion(self):
        assert F(5) + 3 == F(8)
        assert 3 + F(5) == F(8)
        assert 10 - F(3) == F(7)
        assert 2 / F(4) == F(2) * F(4).inverse()

    def test_random_in_range(self):
        rng = DeterministicRng("fp")
        for _ in range(10):
            assert 0 <= F.random(rng).value < P
            assert F.random_nonzero(rng).value != 0

    def test_field_equality_and_hash(self):
        assert Fp(7) == Fp(7)
        assert hash(Fp(7)) == hash(Fp(7))
        assert Fp(7) != Fp(11)

    def test_zero_division_raises(self):
        with pytest.raises(MathError):
            F(1) / F(0)


class TestFp2Construction:
    def test_requires_3_mod_4(self):
        with pytest.raises(ParameterError):
            Fp2(13)  # 13 ≡ 1 (mod 4)

    def test_i_squared_is_minus_one(self):
        i = F2.i()
        assert i * i == F2(-1)


class TestFp2Axioms:
    @given(pairs, pairs, pairs)
    @settings(max_examples=30)
    def test_ring_axioms(self, a, b, c):
        x, y, z = F2(a), F2(b), F2(c)
        assert (x + y) + z == x + (y + z)
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @given(pairs.filter(lambda t: t != (0, 0)))
    @settings(max_examples=30)
    def test_inverse(self, a):
        x = F2(a)
        assert (x * x.inverse()).is_one()

    @given(pairs)
    @settings(max_examples=30)
    def test_conjugation_is_field_automorphism(self, a):
        x = F2(a)
        y = F2((3, 5))
        assert (x * y).conjugate() == x.conjugate() * y.conjugate()
        # Norm lands in F_p (imaginary part zero).
        assert (x * x.conjugate()).b == 0

    @given(pairs, st.integers(min_value=0, max_value=40))
    @settings(max_examples=30)
    def test_pow(self, a, e):
        x = F2(a)
        expected = F2.one()
        for _ in range(e):
            expected = expected * x
        assert x ** e == expected


class TestFp2RawOps:
    """The tuple fast path must agree with the wrapper."""

    @given(pairs, pairs)
    @settings(max_examples=30)
    def test_raw_mul_matches_wrapper(self, a, b):
        assert fp2_mul(a, b, P) == (F2(a) * F2(b)).raw

    @given(pairs)
    @settings(max_examples=30)
    def test_raw_sqr_matches_mul(self, a):
        assert fp2_sqr(a, P) == fp2_mul(a, a, P)

    @given(pairs.filter(lambda t: t != (0, 0)))
    @settings(max_examples=30)
    def test_raw_inv(self, a):
        assert fp2_mul(a, fp2_inv(a, P), P) == (1, 0)

    def test_raw_inv_zero_raises(self):
        with pytest.raises(MathError):
            fp2_inv((0, 0), P)

    def test_raw_pow_negative(self):
        x = (3, 4)
        assert fp2_mul(fp2_pow(x, -2, P), fp2_pow(x, 2, P), P) == (1, 0)

    def test_conj(self):
        assert fp2_conj((3, 4), P) == (3, P - 4)
