"""Pure-Python SHA-256 against FIPS 180-4 vectors and hashlib."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import Sha256, self_check, sha256_pure

# FIPS 180-4 / NIST example vectors.
VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc",
     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


class TestVectors:
    @pytest.mark.parametrize("message,expected", VECTORS[:3])
    def test_short_vectors(self, message, expected):
        assert sha256_pure(message).hex() == expected

    def test_million_a(self):
        message, expected = VECTORS[3]
        assert sha256_pure(message).hex() == expected


class TestIncremental:
    def test_split_updates_equal_one_shot(self):
        message = bytes(range(200)) * 3
        hasher = Sha256()
        hasher.update(message[:7]).update(message[7:100]).update(message[100:])
        assert hasher.digest() == sha256_pure(message)

    def test_digest_does_not_finalize(self):
        hasher = Sha256(b"partial")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b" more")
        assert hasher.digest() == sha256_pure(b"partial more")

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == VECTORS[1][1]

    @pytest.mark.parametrize("size", [55, 56, 57, 63, 64, 65, 119, 128])
    def test_padding_boundaries(self, size):
        """Lengths around the block/padding boundaries are the classic
        implementation traps."""
        message = bytes(size)
        assert sha256_pure(message) == hashlib.sha256(message).digest()


class TestAgainstHashlib:
    @given(st.binary(max_size=300))
    @settings(max_examples=50)
    def test_matches_hashlib(self, data):
        assert sha256_pure(data) == hashlib.sha256(data).digest()

    def test_self_check_passes(self):
        self_check()
