"""HE-SGX (the rejected §III-B design) — semantics and EPC behaviour."""

import pytest

from repro.baselines import HeSgxEnclave, HeSgxGroupManager
from repro.crypto import ecies
from repro.crypto.rng import DeterministicRng
from repro.errors import MembershipError, RevokedError
from repro.sgx.device import SgxDevice
from repro.sgx.epc import PAGE_SIZE, EpcModel

USERS = [f"u{i}" for i in range(6)]


@pytest.fixture()
def manager():
    rng = DeterministicRng("he-sgx")
    device = SgxDevice(rng=rng)
    enclave = HeSgxEnclave.load(device)
    mgr = HeSgxGroupManager(enclave)
    for user in USERS + ["late"]:
        mgr.register_user(user, ecies.generate_keypair(rng))
    return mgr


class TestSemantics:
    def test_create_and_derive(self, manager):
        manager.create_group("g", USERS)
        keys = {manager.derive_group_key("g", u) for u in USERS}
        assert len(keys) == 1

    def test_add_keeps_key(self, manager):
        manager.create_group("g", USERS)
        gk = manager.derive_group_key("g", "u0")
        manager.add_user("g", "late")
        assert manager.derive_group_key("g", "late") == gk

    def test_remove_rekeys_and_locks_out(self, manager):
        manager.create_group("g", USERS)
        gk = manager.derive_group_key("g", "u0")
        manager.remove_user("g", "u3")
        assert manager.derive_group_key("g", "u0") != gk
        with pytest.raises(RevokedError):
            manager.derive_group_key("g", "u3")

    def test_membership_errors(self, manager):
        manager.create_group("g", USERS)
        with pytest.raises(MembershipError):
            manager.add_user("g", "u0")
        with pytest.raises(MembershipError):
            manager.remove_user("g", "stranger")

    def test_zero_knowledge_for_the_driver(self, manager):
        """Unlike plain HE, the untrusted manager never sees gk."""
        manager.create_group("g", USERS)
        gk = manager.derive_group_key("g", "u0")
        for wrapped in manager._wrapped["g"].values():
            assert gk not in wrapped

    def test_leak_scanner_guards_gk(self, manager):
        """The enclave's boundary scanner knows the group keys."""
        from repro.sgx.enclave import trusted_view
        manager.create_group("g", USERS)
        assert trusted_view(manager.enclave)._secret_values

    def test_bulk_registration_single_crossing(self):
        """`register_users` batches the whole roster into one crossing."""
        rng = DeterministicRng("he-sgx-bulk")
        device = SgxDevice(rng=rng)
        mgr = HeSgxGroupManager(HeSgxEnclave.load(device))
        keys = {f"b{i}": ecies.generate_keypair(rng) for i in range(12)}
        mgr.register_users(keys)
        assert mgr.enclave.meter.crossings == 1
        assert mgr.enclave.meter.ecalls == 12
        mgr.create_group("g", list(keys))
        gks = {mgr.derive_group_key("g", u) for u in keys}
        assert len(gks) == 1


class TestEpcBehaviour:
    def test_revocation_touches_linear_working_set(self):
        """The §III-B complaint: HE-SGX revocations read+write metadata
        linear in the group size inside the enclave."""
        rng = DeterministicRng("he-sgx-epc")
        read_bytes = {}
        for n in (16, 64):
            device = SgxDevice(rng=rng, epc=EpcModel())
            enclave = HeSgxEnclave.load(device)
            mgr = HeSgxGroupManager(enclave)
            users = [f"u{i}" for i in range(n)]
            for user in users:
                mgr.register_user(user, ecies.generate_keypair(rng))
            mgr.create_group("g", users)
            before = device.epc.stats.read_bytes
            mgr.remove_user("g", users[0])
            read_bytes[n] = device.epc.stats.read_bytes - before
        assert read_bytes[64] > 3 * read_bytes[16]

    def test_small_epc_thrashes_under_large_group(self):
        rng = DeterministicRng("he-sgx-thrash")
        device = SgxDevice(rng=rng,
                           epc=EpcModel(capacity_bytes=2 * PAGE_SIZE))
        enclave = HeSgxEnclave.load(device)
        mgr = HeSgxGroupManager(enclave)
        users = [f"u{i}" for i in range(200)]
        for user in users:
            mgr.register_user(user, ecies.generate_keypair(rng))
        mgr.create_group("g", users)
        mgr.remove_user("g", users[0])
        assert device.epc.stats.evictions > 0
