"""Snapshot compaction across the stack: store truncation, crash
roll-forward, client snapshot bootstrap + resume cursor, admin
incremental sync, and the cold-start performance claim.

The invariant under test everywhere: state reconstructed from a
compacted store (snapshot + event suffix) is byte-identical to state
reconstructed by replaying the full, uncompacted history.
"""

from __future__ import annotations

import base64
import copy
import json
import shutil

import pytest

from repro.cloud import FileCloudStore
from repro.errors import CrashError, RevokedError, StorageError
from repro.faults import FaultInjector, FaultPlan, FaultyCloudStore, use_faults
from tests.conftest import make_system

GROUP = "g"


def make_filestore_system(root, seed="compact", capacity=4,
                          compact_every=None):
    """A quickstart deployment rewired onto a file-backed store."""
    system = make_system(seed, capacity=capacity)
    store = FileCloudStore(root, compact_every=compact_every)
    system.cloud = store
    system.admin.cloud = store
    return system, store


def churn(admin, adds=(), removes=()):
    for user in adds:
        admin.add_user(GROUP, user)
    for user in removes:
        admin.remove_user(GROUP, user)


def state_digest(state):
    """Comparable image of an AdminGroupState (order-insensitive)."""
    return (
        state.epoch,
        state.table.next_partition_id,
        sorted(state.table.all_members()),
        {pid: record.payload() for pid, record in state.records.items()},
    )


class _CrashAt(FaultInjector):
    """Deterministically crash at one named crash point, once."""

    def __init__(self, name: str) -> None:
        super().__init__(FaultPlan(seed="crash-at"))
        self._name = name
        self.fired = False

    def crash_point(self, name: str) -> None:
        if name == self._name and not self.fired:
            self.fired = True
            raise CrashError(name)


class TestStoreTruncation:
    def test_empty_log_after_truncation_stays_consistent(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b", "c"])
        churn(system.admin, adds=["d"], removes=["b"])
        head = store.head_sequence()

        truncated = store.compact()
        assert truncated > 0
        assert (tmp_path / "c" / "events.jsonl").read_bytes() == b""
        assert store.snapshot_horizon() == head
        assert store.head_sequence() == head

        # New mutations continue the sequence past the horizon, and the
        # suffix is pollable while the prefix arrives synthetically.
        system.admin.add_user(GROUP, "e")
        assert store.head_sequence() > head
        events, cursor = store.poll_dir(f"/{GROUP}/", 0)
        assert cursor == store.head_sequence()
        assert any(e.sequence > head for e in events)

        reopened = FileCloudStore(tmp_path / "c")
        assert reopened.head_sequence() == store.head_sequence()
        assert reopened.snapshot_horizon() == head

    def test_compaction_rejects_bad_interval(self, tmp_path):
        with pytest.raises(StorageError):
            FileCloudStore(tmp_path / "bad", compact_every=0)

    def test_double_compaction_is_idempotent(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b", "c", "d", "e"])
        churn(system.admin, removes=["b"])
        assert store.compact() > 0
        manifest = (tmp_path / "c" / "snapshot.json").read_bytes()
        horizon = store.snapshot_horizon()

        assert store.compact() == 0
        assert (tmp_path / "c" / "snapshot.json").read_bytes() == manifest
        assert store.snapshot_horizon() == horizon

    def test_auto_compaction_triggers_on_interval(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c",
                                              compact_every=3)
        system.admin.create_group(GROUP, ["a", "b", "c"])
        churn(system.admin, adds=["d", "e"], removes=["a"])
        assert store.snapshot_horizon() > 0
        snapshot = store.metrics.registry.snapshot()
        assert snapshot["cloud.compactions"] >= 1

    def test_faulty_wrapper_passes_compaction_through(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b"])
        wrapped = FaultyCloudStore(store, FaultInjector(FaultPlan.disabled()))
        assert wrapped.compact() > 0
        assert wrapped.snapshot_horizon() == store.snapshot_horizon()
        assert wrapped.head_sequence() == store.head_sequence()


class TestCrashMidCompaction:
    def _build(self, root):
        system, store = make_filestore_system(root)
        system.admin.create_group(GROUP, ["a", "b", "c", "d", "e"])
        churn(system.admin, adds=["f"], removes=["b", "d"])
        return system, store

    @pytest.mark.parametrize("point", ["cloud.compact.journaled",
                                       "cloud.compact.snapshot_written"])
    def test_crash_rolls_forward_on_reopen(self, tmp_path, point):
        system, store = self._build(tmp_path / "c")
        shutil.copytree(tmp_path / "c", tmp_path / "control")

        with use_faults(_CrashAt(point)):
            with pytest.raises(CrashError):
                store.compact()
        assert (tmp_path / "c" / "compact.journal").exists()

        # The restarted process rolls the compaction forward.
        recovered = FileCloudStore(tmp_path / "c")
        assert not (tmp_path / "c" / "compact.journal").exists()
        metrics = recovered.metrics.registry.snapshot()
        assert metrics["cloud.recoveries"] == 1

        control = FileCloudStore(tmp_path / "control")
        control.compact()
        assert recovered.snapshot_horizon() == control.snapshot_horizon()
        assert ((tmp_path / "c" / "snapshot.json").read_bytes()
                == (tmp_path / "control" / "snapshot.json").read_bytes())
        ours, cursor = recovered.poll_dir(f"/{GROUP}/", 0)
        theirs, control_cursor = control.poll_dir(f"/{GROUP}/", 0)
        assert cursor == control_cursor
        assert ([(e.sequence, e.path, e.kind, e.version) for e in ours]
                == [(e.sequence, e.path, e.kind, e.version) for e in theirs])

    def test_crash_after_snapshot_written_hand_built(self, tmp_path):
        """The on-disk state a crash leaves between the snapshot write
        and the event-log truncation: journal + snapshot installed,
        events untouched.  Built by hand because an injected crash at
        ``snapshot_written`` unwinds before truncation anyway — this
        pins the recovery contract independently of the injector."""
        self._build(tmp_path / "c")
        shutil.copytree(tmp_path / "c", tmp_path / "done")
        done = FileCloudStore(tmp_path / "done")
        done.compact()
        manifest = (tmp_path / "done" / "snapshot.json").read_bytes()

        (tmp_path / "c" / "compact.journal").write_bytes(manifest)
        (tmp_path / "c" / "snapshot.json").write_bytes(manifest)
        # events.jsonl still holds the full history: the torn state.
        assert (tmp_path / "c" / "events.jsonl").stat().st_size > 0

        recovered = FileCloudStore(tmp_path / "c")
        assert (tmp_path / "c" / "events.jsonl").read_bytes() == b""
        assert not (tmp_path / "c" / "compact.journal").exists()
        assert recovered.snapshot_horizon() == done.snapshot_horizon()
        assert recovered.head_sequence() == done.head_sequence()


class TestClientBootstrap:
    def test_fresh_client_equivalence_after_compaction(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b", "c", "d"])
        churn(system.admin, adds=["e", "f"], removes=["b"])
        shutil.copytree(tmp_path / "c", tmp_path / "full")
        store.compact()

        compacted_client = system.make_client(GROUP, "a")
        compacted_client.sync()

        # Control: the same user replaying the full uncompacted history.
        system.cloud = FileCloudStore(tmp_path / "full")
        replay_client = system.make_client(GROUP, "a")
        replay_client.sync()

        assert (compacted_client.current_group_key()
                == replay_client.current_group_key())
        assert (compacted_client.state.record.payload()
                == replay_client.state.record.payload())
        snapshot = compacted_client.registry.snapshot()
        assert snapshot["client.snapshot_bootstraps"] == 1

    def test_zero_suffix_events_bootstrap(self, tmp_path):
        """Snapshot holding the whole history, not one trailing event."""
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b"])
        store.compact()
        assert (tmp_path / "c" / "events.jsonl").read_bytes() == b""

        client = system.make_client(GROUP, "a")
        assert client.sync() is True
        assert len(client.current_group_key()) == 32
        assert client.state.poll_cursor == store.snapshot_horizon()

    def test_revoked_user_sees_revocation_via_bootstrap(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b", "c"])
        system.admin.remove_user(GROUP, "b")
        store.compact()

        revoked = system.make_client(GROUP, "b")
        revoked.sync()
        with pytest.raises(RevokedError):
            revoked.current_group_key()


class TestResumeCursor:
    def test_resume_cursor_past_truncated_prefix(self, tmp_path):
        """A client that last synced *before* a compaction resumes via
        snapshot bootstrap, not by replaying events that no longer
        exist."""
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b", "c"])
        resume = tmp_path / "resume-a.json"
        client = system.make_client(GROUP, "a")
        client.resume_path = resume
        client.sync()
        stale_cursor = client.state.poll_cursor

        churn(system.admin, adds=["d", "e"], removes=["b"])
        store.compact()
        assert stale_cursor < store.snapshot_horizon()

        restarted = system.make_client(GROUP, "a")
        restarted.resume_path = resume
        restarted._load_resume()
        assert restarted.state.poll_cursor == stale_cursor
        restarted.sync()
        snapshot = restarted.registry.snapshot()
        assert snapshot["client.resume_loads"] == 1
        assert snapshot["client.snapshot_bootstraps"] == 1
        assert restarted.state.poll_cursor >= store.snapshot_horizon()

        control = system.make_client(GROUP, "a")
        control.sync()
        assert (restarted.current_group_key()
                == control.current_group_key())

    def test_resume_roundtrip_without_compaction(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b"])
        resume = tmp_path / "resume.json"
        client = system.make_client(GROUP, "a")
        client.resume_path = resume
        client.sync()
        key = client.current_group_key()

        restarted = system.make_client(GROUP, "a")
        restarted.resume_path = resume
        restarted._load_resume()
        assert restarted.state.poll_cursor == client.state.poll_cursor
        assert restarted.state.record is not None
        # No new events: the resumed client derives the key without any
        # further record installation.
        restarted.sync()
        assert restarted.current_group_key() == key

    def test_tampered_resume_file_is_ignored(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b"])
        resume = tmp_path / "resume.json"
        client = system.make_client(GROUP, "a")
        client.resume_path = resume
        client.sync()

        payload = json.loads(resume.read_text("utf-8"))
        blob = bytearray(base64.b64decode(payload["record"]))
        blob[8] ^= 0x01
        payload["record"] = base64.b64encode(bytes(blob)).decode("ascii")
        resume.write_text(json.dumps(payload), encoding="utf-8")

        restarted = system.make_client(GROUP, "a")
        restarted.resume_path = resume
        restarted._load_resume()
        assert restarted.state.record is None      # cold start
        assert restarted.state.poll_cursor == 0
        restarted.sync()
        assert restarted.current_group_key() == client.current_group_key()

    def test_foreign_identity_resume_ignored(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        system.admin.create_group(GROUP, ["a", "b"])
        resume = tmp_path / "resume.json"
        client = system.make_client(GROUP, "a")
        client.resume_path = resume
        client.sync()

        other = system.make_client(GROUP, "b")
        other.resume_path = resume
        other._load_resume()
        assert other.state.record is None
        assert other.state.poll_cursor == 0


class TestAdminIncrementalSync:
    def test_sync_group_matches_full_reload(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c", capacity=2)
        admin = system.admin
        admin.create_group(GROUP, [f"u{i}" for i in range(6)])
        stale = copy.deepcopy(admin.cache.get(GROUP))

        churn(admin, adds=["v0", "v1"], removes=["u0", "u3"])
        authoritative = state_digest(admin.load_group_from_cloud(GROUP))

        admin.cache.put(stale)
        assert admin.sync_group(GROUP) is True
        assert state_digest(admin.cache.get(GROUP)) == authoritative

    def test_sync_group_across_compacted_prefix(self, tmp_path):
        """The changes the stale admin missed were compacted away; the
        synthetic snapshot events must carry it to parity anyway."""
        system, store = make_filestore_system(tmp_path / "c", capacity=2)
        admin = system.admin
        admin.create_group(GROUP, [f"u{i}" for i in range(6)])
        stale = copy.deepcopy(admin.cache.get(GROUP))

        churn(admin, adds=["v0"], removes=["u1", "u4"])
        store.compact()
        assert stale.sync_cursor < store.snapshot_horizon()
        authoritative = state_digest(admin.load_group_from_cloud(GROUP))

        admin.cache.put(stale)
        assert admin.sync_group(GROUP) is True
        assert state_digest(admin.cache.get(GROUP)) == authoritative

    def test_sync_group_no_changes_is_cheap_noop(self, tmp_path):
        system, store = make_filestore_system(tmp_path / "c")
        admin = system.admin
        admin.create_group(GROUP, ["a", "b", "c"])
        admin.load_group_from_cloud(GROUP)
        before = state_digest(admin.cache.get(GROUP))
        requests_before = store.metrics.requests

        assert admin.sync_group(GROUP) is False
        assert state_digest(admin.cache.get(GROUP)) == before
        assert store.metrics.requests - requests_before == 1  # one poll


class TestColdStartPerformance:
    def test_snapshot_cold_start_beats_full_replay(self):
        """The bench-gate claim at reduced scale: bootstrapping from a
        compacted store must be faster than replaying the full event
        history (min-of-3 to shrug off scheduler noise)."""
        from repro.bench.gate import _op_cold_start

        replay = min(_op_cold_start(0.3, compacted=False)[0]
                     for _ in range(3))
        snapshot = min(_op_cold_start(0.3, compacted=True)[0]
                       for _ in range(3))
        assert snapshot < replay
