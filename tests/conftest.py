"""Shared fixtures.

Cryptographic setup is expensive, so pairing groups, IBBE systems and the
fully wired quickstart system are session-scoped.  Tests that mutate state
build their own instances from the cheap factories below.
"""

from __future__ import annotations

import pytest

from repro import ibbe, quickstart_system
from repro.crypto.rng import DeterministicRng
from repro.pairing import PairingGroup, toy64


@pytest.fixture(scope="session")
def group() -> PairingGroup:
    """Toy (insecure, fast) type-A pairing group."""
    return PairingGroup(toy64())


@pytest.fixture(scope="session")
def ibbe_system(group):
    """A shared IBBE system with bound m=8: (msk, pk)."""
    rng = DeterministicRng("conftest-ibbe")
    return ibbe.setup(group, m=8, rng=rng)


@pytest.fixture(scope="session")
def user_keys(group, ibbe_system):
    """Extracted user keys for a stable cast of identities."""
    msk, pk = ibbe_system
    cast = [f"user{i}" for i in range(8)] + ["mallory", "newcomer"]
    return {u: ibbe.extract(msk, pk, u) for u in cast}


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return DeterministicRng("per-test")


def make_system(seed: str = "sys", capacity: int = 4,
                auto_repartition: bool = True, system_bound: int = 16,
                pipeline: bool = True):
    """Factory for a full IBBE-SGX deployment on toy parameters.

    ``pipeline=False`` selects the administrator's sequential
    (call-per-ecall, request-per-object) mode for equivalence testing.
    """
    return quickstart_system(
        partition_capacity=capacity,
        params="toy64",
        rng=DeterministicRng(seed),
        auto_repartition=auto_repartition,
        system_bound=max(system_bound, capacity),
        pipeline=pipeline,
    )


@pytest.fixture(scope="session")
def shared_system():
    """A session-scoped deployment for read-mostly tests.

    Tests performing membership mutations must create their own system via
    :func:`make_system` (exposed through the ``system_factory`` fixture).
    """
    return make_system("shared")


@pytest.fixture()
def system_factory():
    return make_system
