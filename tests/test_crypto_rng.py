"""Randomness source tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng, SystemRng


class TestDeterministicRng:
    def test_reproducible(self):
        a = DeterministicRng("seed").random_bytes(64)
        b = DeterministicRng("seed").random_bytes(64)
        assert a == b

    def test_seed_separation(self):
        assert (DeterministicRng("a").random_bytes(32)
                != DeterministicRng("b").random_bytes(32))

    def test_seed_types(self):
        assert DeterministicRng(b"x").random_bytes(8) == DeterministicRng(b"x").random_bytes(8)
        DeterministicRng(12345).random_bytes(8)
        DeterministicRng("str").random_bytes(8)

    def test_stream_advances(self):
        rng = DeterministicRng("s")
        assert rng.random_bytes(16) != rng.random_bytes(16)

    def test_fork_independent(self):
        rng = DeterministicRng("s")
        f1 = rng.fork("a")
        f2 = rng.fork("b")
        assert f1.random_bytes(16) != f2.random_bytes(16)
        # Forking does not disturb the parent stream.
        before = DeterministicRng("s")
        before.fork("a")
        assert before.random_bytes(8) == DeterministicRng("s").random_bytes(8)

    @given(st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=50)
    def test_randint_below_in_range(self, bound):
        rng = DeterministicRng(f"bound{bound}")
        for _ in range(5):
            assert 0 <= rng.randint_below(bound) < bound

    def test_randint_bound_one(self):
        assert DeterministicRng("x").randint_below(1) == 0

    def test_randint_invalid_bound(self):
        with pytest.raises(ValueError):
            DeterministicRng("x").randint_below(0)

    def test_rough_uniformity(self):
        rng = DeterministicRng("uniform")
        counts = [0] * 4
        for _ in range(2000):
            counts[rng.randint_below(4)] += 1
        for c in counts:
            assert 380 <= c <= 620  # ±~25 % of the expected 500


class TestSystemRng:
    def test_basic(self):
        rng = SystemRng()
        assert len(rng.random_bytes(32)) == 32
        assert 0 <= rng.randint_below(100) < 100

    def test_nontrivial_entropy(self):
        rng = SystemRng()
        assert rng.random_bytes(16) != rng.random_bytes(16)
