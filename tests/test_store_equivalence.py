"""Model-based equivalence of the in-memory and file-backed cloud stores.

Random operation sequences must produce identical observable behaviour
(results, errors, event streams) from :class:`CloudStore` and
:class:`FileCloudStore` — the system code treats them interchangeably.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import CloudBatch, CloudStore, FileCloudStore
from repro.errors import ConflictError, NotFoundError

PATHS = ["/g/p0", "/g/p1", "/g/descriptor", "/h/p0"]

batch_ops = st.lists(
    st.one_of(
        st.tuples(st.just("bput"), st.sampled_from(PATHS),
                  st.binary(max_size=8)),
        st.tuples(st.just("bcput"), st.sampled_from(PATHS),
                  st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("bdel"), st.sampled_from(PATHS),
                  st.booleans()),
    ),
    min_size=1, max_size=4,
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(PATHS),
                  st.binary(max_size=16)),
        st.tuples(st.just("cput"), st.sampled_from(PATHS),
                  st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("get"), st.sampled_from(PATHS)),
        st.tuples(st.just("delete"), st.sampled_from(PATHS)),
        st.tuples(st.just("list"), st.sampled_from(["/g", "/h"])),
        st.tuples(st.just("poll"), st.sampled_from(["/g", "/h"])),
        st.tuples(st.just("commit"), batch_ops),
        st.tuples(st.just("get_many"),
                  st.lists(st.sampled_from(PATHS), max_size=4)),
    ),
    max_size=25,
)


def _build_batch(specs) -> CloudBatch:
    batch = CloudBatch()
    for spec in specs:
        if spec[0] == "bput":
            batch.put(spec[1], spec[2])
        elif spec[0] == "bcput":
            batch.put(spec[1], b"cond", expected_version=spec[2])
        else:
            batch.delete(spec[1], ignore_missing=spec[2])
    return batch


def _apply(store, op):
    """Run one op; normalize the outcome into comparable data."""
    kind = op[0]
    try:
        if kind == "put":
            return ("version", store.put(op[1], op[2]))
        if kind == "cput":
            return ("version",
                    store.put(op[1], b"cond", expected_version=op[2]))
        if kind == "get":
            obj = store.get(op[1])
            return ("object", obj.data, obj.version)
        if kind == "delete":
            store.delete(op[1])
            return ("deleted",)
        if kind == "list":
            return ("listing", tuple(store.list_dir(op[1])))
        if kind == "poll":
            events, cursor = store.poll_dir(op[1])
            return ("events",
                    tuple((e.path, e.kind, e.version) for e in events),
                    cursor)
        if kind == "commit":
            versions = store.commit(_build_batch(op[1]))
            return ("committed", tuple(sorted(versions.items())))
        if kind == "get_many":
            objects = store.get_many(op[1])
            return ("objects",
                    tuple(sorted((p, o.data, o.version)
                                 for p, o in objects.items())))
        raise AssertionError(kind)
    except NotFoundError:
        return ("error", "not-found")
    except ConflictError:
        return ("error", "conflict")


@given(ops=operations)
@settings(max_examples=40,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_stores_behave_identically(tmp_path_factory, ops):
    memory = CloudStore()
    disk = FileCloudStore(tmp_path_factory.mktemp("store"))
    for index, op in enumerate(ops):
        left = _apply(memory, op)
        right = _apply(disk, op)
        assert left == right, f"divergence at op {index}: {op}"
    # Final adversary views agree.
    mem_view = {o.path: (o.data, o.version) for o in memory.adversary_view()}
    disk_view = {o.path: (o.data, o.version) for o in disk.adversary_view()}
    assert mem_view == disk_view
