"""Pipeline vs. sequential equivalence — the refactor's safety net.

The batched operation pipeline (``pipeline=True``, the default) must be
*observationally identical* to the sequential mode it replaced: both run
the same planning phase (partition-table mutations and RNG draws) before
any enclave work, and the enclave sees the same ecalls in the same
order.  Only the transport differs — one crossing instead of N, one
cloud commit instead of N requests — so the resulting cloud bytes,
object versions and client-derived keys must match exactly.

Also pins the crossing/request footprint the pipeline was built for, and
the sparse-partition-id ``load_group_from_cloud`` path.
"""

import pytest

from repro.core.admin import GroupAdministrator
from repro.errors import RevokedError
from tests.conftest import make_system


def run_paired(script, seed="equiv", capacity=3, auto_repartition=True,
               system_bound=64):
    """Run the same mutation script against a pipelined and a sequential
    deployment built from the same deterministic seed."""
    systems = []
    for pipeline in (True, False):
        system = make_system(seed, capacity=capacity,
                             auto_repartition=auto_repartition,
                             system_bound=system_bound, pipeline=pipeline)
        script(system)
        systems.append(system)
    return systems


def cloud_state(system):
    return {obj.path: (obj.data, obj.version)
            for obj in system.cloud.adversary_view()}


def derived_keys(system, group_id, users):
    keys = {}
    for user in users:
        client = system.make_client(group_id, user)
        client.sync()
        keys[user] = client.current_group_key()
    assert len(set(keys.values())) == 1
    return keys


def assert_equivalent(script, users_after, group_id="g", **kwargs):
    pipelined, sequential = run_paired(script, **kwargs)
    assert cloud_state(pipelined) == cloud_state(sequential)
    if users_after:
        assert (derived_keys(pipelined, group_id, users_after)
                == derived_keys(sequential, group_id, users_after))
    return pipelined, sequential


class TestByteIdenticalCloudState:
    def test_create_group_multiple_partitions(self):
        members = [f"u{i}" for i in range(8)]
        assert_equivalent(
            lambda s: s.admin.create_group("g", members), members,
        )

    def test_add_user_existing_and_fresh_partition(self):
        def script(system):
            system.admin.create_group("g", ["a", "b"])
            system.admin.add_user("g", "c")   # joins the open partition
            system.admin.add_user("g", "d")   # fills it? capacity=3: fresh
            system.admin.add_user("g", "e")   # existing again

        assert_equivalent(script, ["a", "b", "c", "d", "e"])

    def test_add_users_fill_then_spill(self):
        joiners = [f"j{i}" for i in range(7)]

        def script(system):
            system.admin.create_group("g", ["a", "b"])
            system.admin.add_users("g", joiners)

        assert_equivalent(script, ["a", "b"] + joiners)

    def test_remove_user_host_survives(self):
        def script(system):
            system.admin.create_group("g", ["a", "b", "c"])
            system.admin.remove_user("g", "b")

        assert_equivalent(script, ["a", "c"])

    def test_remove_user_host_empties(self):
        def script(system):
            system.admin.create_group("g", ["a", "b", "c"])
            system.admin.remove_user("g", "b")

        assert_equivalent(script, ["a", "c"], capacity=1,
                          auto_repartition=False)

    def test_remove_last_member(self):
        def script(system):
            system.admin.create_group("g", ["solo"])
            system.admin.remove_user("g", "solo")

        pipelined, sequential = assert_equivalent(script, [])
        client = pipelined.make_client("g", "solo")
        client.sync()
        with pytest.raises(RevokedError):
            client.current_group_key()

    def test_rekey(self):
        members = [f"u{i}" for i in range(6)]

        def script(system):
            system.admin.create_group("g", members)
            system.admin.rekey("g")

        assert_equivalent(script, members)

    def test_delete_then_recreate(self):
        def script(system):
            system.admin.create_group("g", ["a", "b", "c", "d"])
            system.admin.delete_group("g")
            system.admin.create_group("g", ["x", "y"])

        assert_equivalent(script, ["x", "y"])

    def test_churn_script(self):
        """A longer mixed sequence, including auto-repartitioning."""
        def script(system):
            admin = system.admin
            admin.create_group("g", [f"u{i}" for i in range(9)])
            admin.add_users("g", [f"n{i}" for i in range(5)])
            for user in ("u1", "u4", "n0", "u8"):
                admin.remove_user("g", user)
            admin.rekey("g")
            admin.add_user("g", "late")
            admin.create_group("h", ["other"])

        survivors = ([f"u{i}" for i in range(9) if i not in (1, 4, 8)]
                     + [f"n{i}" for i in range(1, 5)] + ["late"])
        pipelined, sequential = assert_equivalent(script, survivors)
        assert (pipelined.admin.metrics.bytes_pushed
                == sequential.admin.metrics.bytes_pushed)
        assert (pipelined.admin.metrics.partitions_written
                == sequential.admin.metrics.partitions_written)


class TestCrossingAndRequestFootprint:
    """The point of the pipeline: one crossing + one commit per mutation,
    regardless of how many partitions it touches."""

    def _fan_out(self, pipeline):
        # capacity=1 -> every member is their own partition.
        system = make_system("footprint", capacity=1, system_bound=4,
                             auto_repartition=False, pipeline=pipeline)
        system.admin.create_group("g", [f"u{i}" for i in range(6)])
        return system

    def test_rekey_is_one_crossing_one_commit(self):
        system = self._fan_out(pipeline=True)
        meter = system.enclave.meter
        metrics = system.cloud.metrics
        crossings = meter.crossings
        requests = metrics.requests
        commits = metrics.batch_commits
        system.admin.rekey("g")
        assert meter.crossings - crossings == 1
        assert metrics.requests - requests == 1
        assert metrics.batch_commits - commits == 1

    def test_sequential_rekey_pays_per_object(self):
        system = self._fan_out(pipeline=False)
        requests = system.cloud.metrics.requests
        system.admin.rekey("g")
        # Descriptor + 6 partitions + sealed key, one request each.
        assert system.cloud.metrics.requests - requests == 8
        assert system.cloud.metrics.batch_commits == 0

    def test_add_users_batch_is_one_crossing_one_commit(self):
        system = make_system("footprint-add", capacity=2, system_bound=4,
                             pipeline=True)
        system.admin.create_group("g", ["a", "b"])
        meter = system.enclave.meter
        metrics = system.cloud.metrics
        crossings = meter.crossings
        requests = metrics.requests
        commits = metrics.batch_commits
        system.admin.add_users("g", [f"n{i}" for i in range(6)])
        assert meter.crossings - crossings == 1
        assert metrics.requests - requests == 1
        assert metrics.batch_commits - commits == 1

    def test_sequential_add_users_pays_per_partition(self):
        system = make_system("footprint-add", capacity=2, system_bound=4,
                             pipeline=False)
        system.admin.create_group("g", ["a", "b"])
        crossings = system.enclave.meter.crossings
        requests = system.cloud.metrics.requests
        system.admin.add_users("g", [f"n{i}" for i in range(6)])
        # Three fresh partitions: one create ecall each, plus batched-add
        # ecalls replayed individually.
        assert system.enclave.meter.crossings - crossings > 1
        assert system.cloud.metrics.requests - requests > 1

    def test_delete_group_is_one_commit(self):
        system = self._fan_out(pipeline=True)
        metrics = system.cloud.metrics
        requests = metrics.requests
        commits = metrics.batch_commits
        system.admin.delete_group("g")
        assert metrics.requests - requests == 1
        assert metrics.batch_commits - commits == 1
        assert not any("/g/" in obj.path or obj.path.endswith("/g")
                       for obj in system.cloud.adversary_view())


class TestLoadFromCloudSparseIds:
    """After deletions, partition ids on the cloud are sparse; a takeover
    administrator must rebuild the exact table, not a renumbered one."""

    def _sparse_world(self, pipeline):
        system = make_system("sparse", capacity=1, system_bound=4,
                            auto_repartition=False, pipeline=pipeline)
        system.admin.create_group("g", ["a", "b", "c"])
        system.admin.remove_user("g", "b")   # drops partition 1
        return system

    def _takeover_admin(self, system, pipeline):
        return GroupAdministrator(
            enclave=system.enclave,
            cloud=system.cloud,
            signing_key=system.admin._signing_key,
            partition_capacity=1,
            rng=system.rng,
            auto_repartition=False,
            pipeline=pipeline,
        )

    @pytest.mark.parametrize("pipeline", [True, False])
    def test_reload_preserves_sparse_partition_ids(self, pipeline):
        system = self._sparse_world(pipeline)
        original = system.admin.group_state("g")
        assert sorted(original.records) == [0, 2]

        admin2 = self._takeover_admin(system, pipeline)
        state = admin2.load_group_from_cloud("g")
        assert sorted(state.records) == [0, 2]
        assert state.epoch == original.epoch
        assert state.descriptor_version == original.descriptor_version
        assert {pid: tuple(r.members) for pid, r in state.records.items()} \
            == {pid: tuple(r.members) for pid, r in original.records.items()}
        assert state.sealed_group_key == original.sealed_group_key

    def test_new_partition_ids_continue_after_gap(self):
        system = self._sparse_world(pipeline=True)
        admin2 = self._takeover_admin(system, pipeline=True)
        admin2.load_group_from_cloud("g")
        admin2.add_user("g", "d")
        state = admin2.group_state("g")
        # The freed id 1 is not reused blindly past the stored ids.
        assert sorted(state.records) == [0, 2, 3]
        client = system.make_client("g", "d")
        client.sync()
        assert client.current_group_key() is not None

    def test_pipelined_and_sequential_reload_agree(self):
        system = self._sparse_world(pipeline=True)
        via_batch = self._takeover_admin(system, pipeline=True) \
            .load_group_from_cloud("g")
        via_single = self._takeover_admin(system, pipeline=False) \
            .load_group_from_cloud("g")
        assert via_batch.records.keys() == via_single.records.keys()
        assert {pid: r.ciphertext for pid, r in via_batch.records.items()} \
            == {pid: r.ciphertext for pid, r in via_single.records.items()}
        assert via_batch.sealed_group_key == via_single.sealed_group_key
