"""KDF stack against RFC 4231 (HMAC) and RFC 5869 (HKDF) vectors."""

import pytest

from repro.crypto.kdf import hkdf, hmac_sha256, mgf1, sha256


class TestHmac:
    def test_rfc4231_case_1(self):
        key = bytes.fromhex("0b" * 20)
        out = hmac_sha256(key, b"Hi There")
        assert out.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        out = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert out.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case_3(self):
        key = bytes.fromhex("aa" * 20)
        out = hmac_sha256(key, bytes.fromhex("dd" * 50))
        assert out.hex() == (
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        )

    def test_long_key_hashed(self):
        # RFC 4231 case 6: 131-byte key exceeds the block size.
        key = bytes.fromhex("aa" * 131)
        out = hmac_sha256(
            key, b"Test Using Larger Than Block-Size Key - Hash Key First"
        )
        assert out.hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, 42, salt=salt, info=info)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_info(self):
        okm = hkdf(bytes.fromhex("0b" * 22), 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_length_enforced(self):
        assert len(hkdf(b"ikm", 100)) == 100
        with pytest.raises(ValueError):
            hkdf(b"ikm", 255 * 32 + 1)

    def test_info_separates(self):
        assert hkdf(b"k", 32, info=b"a") != hkdf(b"k", 32, info=b"b")


class TestMgf1:
    def test_length(self):
        assert len(mgf1(b"seed", 100)) == 100

    def test_prefix_stability(self):
        assert mgf1(b"seed", 64)[:32] == mgf1(b"seed", 32)

    def test_seed_sensitivity(self):
        assert mgf1(b"a", 32) != mgf1(b"b", 32)


class TestSha256:
    def test_known(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
