"""Zero-knowledge and threat-model tests (paper §II).

The honest-but-curious adversaries are (a) the administrator, (b) the cloud
storage, and (c) coalitions of either with revoked users.  These tests run
the real system code paths and assert that none of them can reach a
plaintext group key.
"""

import pytest

from repro import ibbe
from repro.core.envelope import unwrap_group_key
from repro.errors import ReproError, RevokedError
from tests.conftest import make_system

MEMBERS = [f"user{i}" for i in range(8)]


@pytest.fixture()
def world():
    system = make_system("zk", capacity=4)
    system.admin.create_group("team", MEMBERS)
    client = system.make_client("team", "user0")
    client.sync()
    return system, client, client.current_group_key()


def _all_cloud_bytes(system):
    return b"".join(obj.data for obj in system.cloud.adversary_view())


def _all_admin_visible_bytes(system, group_id):
    """Everything the untrusted administrator process can inspect."""
    state = system.admin.group_state(group_id)
    chunks = [state.sealed_group_key]
    for record in state.records.values():
        chunks.append(record.ciphertext)
        chunks.append(record.envelope)
        chunks.extend(m.encode() for m in record.members)
    return b"".join(chunks)


class TestCuriousCloud:
    def test_gk_never_stored_in_plaintext(self, world):
        system, _, gk = world
        assert gk not in _all_cloud_bytes(system)

    def test_gk_absent_after_churn(self, world):
        system, client, _ = world
        system.admin.add_user("team", "x")
        system.admin.remove_user("team", "user3")
        system.admin.rekey("team")
        client.sync()
        gk = client.current_group_key()
        assert gk not in _all_cloud_bytes(system)

    def test_membership_is_visible(self, world):
        """The model explicitly does NOT hide identities (§II) — verify the
        trade-off is as documented, not accidentally stronger."""
        system, _, _ = world
        assert b"user0" in _all_cloud_bytes(system)


class TestCuriousAdministrator:
    def test_admin_state_has_no_gk(self, world):
        system, _, gk = world
        assert gk not in _all_admin_visible_bytes(system, "team")

    def test_sealed_gk_opaque_to_admin(self, world):
        system, _, gk = world
        sealed = system.admin.group_state("team").sealed_group_key
        assert gk not in sealed

    def test_enclave_leak_scanner_active(self, world):
        """The enclave tracks the live gk as secret; a hypothetical leaky
        ecall would be caught (see test_sgx_enclave for the mechanism).

        White-box assertion standing inside the trust boundary, hence the
        ``trusted_view`` escape hatch."""
        from repro.sgx.enclave import trusted_view
        system, _, _ = world
        assert trusted_view(system.enclave)._secret_values  # gk & msk

    def test_msk_never_in_ecall_results(self, world):
        from repro.sgx.enclave import trusted_view
        system, _, _ = world
        gamma_bytes = trusted_view(system.enclave)._msk.gamma.to_bytes(
            32, "big"
        )
        state = system.admin.group_state("team")
        for record in state.records.values():
            assert gamma_bytes not in record.ciphertext
        assert gamma_bytes not in state.sealed_group_key


class TestRevokedCoalition:
    def test_revoked_user_plus_cloud_cannot_recover_new_gk(self, world):
        system, client, gk_old = world
        victim_key = system.user_key("user5")
        system.admin.remove_user("team", "user5")
        client.sync()
        gk_new = client.current_group_key()

        # The coalition: victim's key + full cloud contents.
        pk = system.public_key
        from repro.core.metadata import PartitionRecord
        recovered = []
        for obj in system.cloud.adversary_view():
            if "/p" not in obj.path:
                continue
            record = PartitionRecord.verify_and_decode(
                obj.data, system.admin.verification_key
            )
            ct = ibbe.IbbeCiphertext.decode(pk.group, record.ciphertext)
            # Try decrypting with the revoked key against every claimed set
            # (including lying about membership).
            for claimed in (list(record.members),
                            list(record.members) + ["user5"]):
                if "user5" not in claimed:
                    continue
                try:
                    bk = ibbe.decrypt(pk, victim_key, claimed, ct)
                    gk = unwrap_group_key(bk.digest(), record.envelope,
                                          aad=b"team")
                    recovered.append(gk)
                except ReproError:
                    pass
        assert gk_new not in recovered

    def test_pre_revocation_metadata_useless_after_rekey(self, world):
        """Old envelopes only ever yield the old gk (the paper accepts
        that joiners/leavers may know keys of epochs they belonged to)."""
        system, client, gk_old = world
        old_records = {
            pid: record
            for pid, record in
            system.admin.group_state("team").records.items()
        }
        victim_key = system.user_key("user5")
        system.admin.remove_user("team", "user5")
        client.sync()
        gk_new = client.current_group_key()
        pid = next(
            pid for pid, r in old_records.items() if "user5" in r.members
        )
        record = old_records[pid]
        ct = ibbe.IbbeCiphertext.decode(system.public_key.group,
                                        record.ciphertext)
        bk = ibbe.decrypt(system.public_key, victim_key,
                          list(record.members), ct)
        gk = unwrap_group_key(bk.digest(), record.envelope, aad=b"team")
        assert gk == gk_old
        assert gk != gk_new


class TestMultiUserCollusion:
    def test_coalition_of_revoked_users_fails(self, world):
        """Full collusion resistance: several revoked users pooling their
        keys (and lying about set membership) cannot recover the new key."""
        system, client, _ = world
        coalition = ["user3", "user5", "user6"]
        keys = {u: system.user_key(u) for u in coalition}
        for user in coalition:
            system.admin.remove_user("team", user)
        client.sync()
        gk_new = client.current_group_key()

        pk = system.public_key
        from repro.core.metadata import PartitionRecord
        attempts = []
        for obj in system.cloud.adversary_view():
            if "/p" not in obj.path:
                continue
            record = PartitionRecord.verify_and_decode(
                obj.data, system.admin.verification_key
            )
            ct = ibbe.IbbeCiphertext.decode(pk.group, record.ciphertext)
            for user in coalition:
                for claimed in (
                    list(record.members) + [user],
                    list(record.members) + coalition,
                ):
                    try:
                        bk = ibbe.decrypt(pk, keys[user], claimed, ct)
                        gk = unwrap_group_key(bk.digest(), record.envelope,
                                              aad=b"team")
                        attempts.append(gk)
                    except ReproError:
                        pass
        assert gk_new not in attempts

    def test_combined_key_elements_useless(self, world):
        """Algebraic combination of two revoked keys (product of the G1
        elements) is not a valid key for any identity."""
        system, client, _ = world
        k5 = system.user_key("user5")
        k6 = system.user_key("user6")
        system.admin.remove_user("team", "user5")
        system.admin.remove_user("team", "user6")
        client.sync()
        gk_new = client.current_group_key()

        forged_element = k5.element * k6.element
        pk = system.public_key
        state = system.admin.group_state("team")
        record = next(iter(state.records.values()))
        ct = ibbe.IbbeCiphertext.decode(pk.group, record.ciphertext)
        for claimed_identity in ("user5", "user6", "user0"):
            forged = ibbe.IbbeUserKey(claimed_identity, forged_element)
            try:
                bk = ibbe.decrypt(
                    pk, forged,
                    list(record.members) + [claimed_identity]
                    if claimed_identity not in record.members
                    else list(record.members),
                    ct,
                )
                gk = unwrap_group_key(bk.digest(), record.envelope,
                                      aad=b"team")
                assert gk != gk_new
            except ReproError:
                pass


class TestNeverMembers:
    def test_outsider_with_extracted_key_fails_everywhere(self, world):
        system, _, _ = world
        outsider = system.make_client("team", "eve")
        outsider.sync()
        with pytest.raises(RevokedError):
            outsider.current_group_key()

    def test_wrong_group_key_isolated(self, world):
        """Keys derive per group: a member of one group learns nothing
        about another group's key."""
        system, client, gk_team = world
        system.admin.create_group("other", ["solo"])
        solo = system.make_client("other", "solo")
        solo.sync()
        assert solo.current_group_key() != gk_team
