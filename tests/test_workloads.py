"""Workload generation and replay tests."""

import pytest

from repro.baselines import HePkiScheme, HybridGroupManager
from repro.crypto.rng import DeterministicRng
from repro.errors import ParameterError
from repro.workloads import (
    HybridReplayAdapter,
    IbbeSgxReplayAdapter,
    KernelTraceConfig,
    ReplayEngine,
    generate_trace,
    synthesize_kernel_trace,
)
from repro.workloads.kernel_trace import PAPER_PEAK_GROUP, PAPER_TOTAL_OPS
from repro.workloads.synthetic import (
    OP_ADD,
    OP_REMOVE,
    revocation_rate_sweep,
    trace_stats,
)
from tests.conftest import make_system


class TestSyntheticTraces:
    def test_deterministic(self):
        a = generate_trace(200, 0.3, seed="s")
        b = generate_trace(200, 0.3, seed="s")
        assert a == b

    def test_seed_variation(self):
        assert generate_trace(200, 0.3, seed="a") != generate_trace(
            200, 0.3, seed="b"
        )

    def test_rate_zero_all_adds(self):
        trace = generate_trace(100, 0.0)
        assert all(op.kind == OP_ADD for op in trace)

    def test_rate_respected_approximately(self):
        trace = generate_trace(4000, 0.3, seed="rate")
        stats = trace_stats(trace)
        assert 0.25 <= stats.removes / stats.operations <= 0.35

    def test_rate_one_drains(self):
        # Rate 1.0 with initial members removes until empty, then must add.
        trace = generate_trace(10, 1.0, initial_members=["a", "b"])
        stats = trace_stats(trace, initial_members=["a", "b"])
        assert stats.removes >= 2

    def test_semantic_validity(self):
        """No removal of an absent user; no duplicate addition."""
        trace = generate_trace(2000, 0.5, seed="valid")
        present = set()
        for op in trace:
            if op.kind == OP_ADD:
                assert op.user not in present
                present.add(op.user)
            else:
                assert op.user in present
                present.discard(op.user)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            generate_trace(-1, 0.5)
        with pytest.raises(ParameterError):
            generate_trace(10, 1.5)

    def test_sweep_shape(self):
        sweep = revocation_rate_sweep(50, steps=11)
        assert len(sweep) == 11
        assert sweep[0][0] == 0.0
        assert sweep[-1][0] == 1.0


class TestKernelTrace:
    def test_scaled_statistics(self):
        config = KernelTraceConfig(scale=0.01)
        trace = synthesize_kernel_trace(config)
        stats = trace_stats(trace)
        assert stats.operations == config.scaled_ops()
        # Peak concurrency within 25 % of the calibration target.
        target = config.scaled_peak()
        assert abs(stats.peak_group_size - target) <= max(2, target * 0.25)

    def test_full_scale_parameters(self):
        config = KernelTraceConfig()
        assert config.scaled_ops() == PAPER_TOTAL_OPS
        assert config.scaled_peak() == PAPER_PEAK_GROUP

    def test_deterministic(self):
        a = synthesize_kernel_trace(KernelTraceConfig(scale=0.005))
        b = synthesize_kernel_trace(KernelTraceConfig(scale=0.005))
        assert a == b

    def test_chronological_and_consistent(self):
        trace = synthesize_kernel_trace(KernelTraceConfig(scale=0.005))
        assert all(
            trace[i].timestamp <= trace[i + 1].timestamp
            for i in range(len(trace) - 1)
        )
        present = set()
        for op in trace:
            if op.kind == OP_ADD:
                assert op.user not in present
                present.add(op.user)
            else:
                assert op.user in present
                present.discard(op.user)
        assert not present  # everyone eventually departs

    def test_every_dev_has_add_and_remove(self):
        trace = synthesize_kernel_trace(KernelTraceConfig(scale=0.005))
        adds = {op.user for op in trace if op.kind == OP_ADD}
        removes = {op.user for op in trace if op.kind == OP_REMOVE}
        assert adds == removes


class TestReplayEngine:
    def test_ibbe_and_hybrid_agree_on_membership(self):
        trace = generate_trace(40, 0.3, seed="agree")
        system = make_system("replay-sys", capacity=4)
        ibbe_report = ReplayEngine(
            IbbeSgxReplayAdapter(system), group_id="g"
        ).run(trace)

        manager = HybridGroupManager(
            HePkiScheme(rng=DeterministicRng("rk")),
            rng=DeterministicRng("rm"),
        )
        hybrid_report = ReplayEngine(
            HybridReplayAdapter(manager), group_id="g"
        ).run(trace)

        assert ibbe_report.adds == hybrid_report.adds
        assert ibbe_report.removes == hybrid_report.removes
        assert set(system.admin.members("g")) == set(manager.members("g"))

    def test_decrypt_sampling(self):
        trace = generate_trace(20, 0.0, seed="probe")
        system = make_system("probe-sys", capacity=4)
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g",
                              decrypt_sample_every=5)
        report = engine.run(trace)
        assert len(report.decrypt_samples) == 4
        assert report.mean_decrypt_seconds > 0

    def test_initial_members(self):
        system = make_system("init-sys", capacity=4)
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g")
        report = engine.run([], initial_members=["a", "b"])
        assert report.operations_applied == 0
        assert set(system.admin.members("g")) == {"a", "b"}

    def test_latency_capture(self):
        trace = generate_trace(10, 0.2, seed="lat")
        system = make_system("lat-sys", capacity=4)
        report = ReplayEngine(IbbeSgxReplayAdapter(system),
                              group_id="g").run(trace)
        assert len(report.op_latencies) == report.operations_applied
        assert report.admin_seconds == pytest.approx(
            sum(report.op_latencies)
        )
