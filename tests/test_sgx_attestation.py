"""Attestation chain tests: quotes, IAS, auditor/CA, provisioning (Fig. 3)."""

import pytest

from repro.crypto import ecdsa
from repro.crypto.rng import DeterministicRng
from repro.errors import AttestationError, EnclaveError
from repro.pairing import PairingGroup
from repro.sgx.auditor import Auditor
from repro.sgx.counters import MonotonicCounterService
from repro.sgx.device import SgxDevice
from repro.sgx.ias import IntelAttestationService
from repro.enclave_app import IbbeEnclave
from repro.sgx.attestation import provision_user_key, setup_trust


@pytest.fixture()
def world(group):
    """A fresh device + IAS + auditor + loaded IBBE enclave."""
    rng = DeterministicRng("attest-world")
    device = SgxDevice(rng=rng)
    ias = IntelAttestationService(rng=rng)
    ias.register_device(device.device_id, device.attestation_public_key)
    enclave = IbbeEnclave.load(device, {"pairing_group": group})
    auditor = Auditor(ias, rng=rng)
    return device, ias, enclave, auditor, rng


class TestQuotes:
    def test_quote_verifies(self, world):
        device, ias, enclave, auditor, rng = world
        quote = enclave.call("get_attestation_quote")
        report = ias.verify_quote(quote)
        assert report.is_ok
        IntelAttestationService.verify_report(report, ias.report_public_key)

    def test_unknown_device_rejected(self, world, group):
        _, ias, _, _, rng = world
        rogue_device = SgxDevice(rng=rng)  # never registered
        rogue = IbbeEnclave.load(rogue_device, {"pairing_group": group})
        report = ias.verify_quote(rogue.call("get_attestation_quote"))
        assert report.quote_status == "UNKNOWN_DEVICE"

    def test_revoked_device_rejected(self, world):
        device, ias, enclave, _, _ = world
        ias.revoke_device(device.device_id)
        report = ias.verify_quote(enclave.call("get_attestation_quote"))
        assert report.quote_status == "DEVICE_REVOKED"

    def test_forged_signature_rejected(self, world):
        device, ias, enclave, _, _ = world
        quote = enclave.call("get_attestation_quote")
        from repro.sgx.quote import Quote
        forged = Quote(
            measurement=quote.measurement,
            report_data=quote.report_data,
            device_id=quote.device_id,
            signature=bytes(64),
        )
        assert ias.verify_quote(forged).quote_status == "SIGNATURE_INVALID"

    def test_report_signature_checked(self, world):
        device, ias, enclave, _, rng = world
        report = ias.verify_quote(enclave.call("get_attestation_quote"))
        wrong_key = ecdsa.generate_keypair(rng).public_key()
        with pytest.raises(AttestationError):
            IntelAttestationService.verify_report(report, wrong_key)

    def test_double_registration_rejected(self, world):
        device, ias, _, _, _ = world
        with pytest.raises(AttestationError):
            ias.register_device(device.device_id,
                                device.attestation_public_key)


class TestAuditor:
    def test_certify_happy_path(self, world):
        _, _, enclave, auditor, _ = world
        auditor.approve_measurement(enclave.measurement)
        cert = setup_trust(enclave, auditor)
        cert.verify(auditor.ca_public_key)
        assert cert.measurement == enclave.measurement

    def test_unapproved_measurement_rejected(self, world):
        _, _, enclave, auditor, _ = world
        with pytest.raises(AttestationError, match="measurement"):
            setup_trust(enclave, auditor)

    def test_report_data_must_commit_to_key(self, world):
        _, _, enclave, auditor, _ = world
        auditor.approve_measurement(enclave.measurement)
        quote = enclave.call("get_attestation_quote")
        with pytest.raises(AttestationError, match="commit"):
            auditor.attest_and_certify(quote, b"some other key")

    def test_cert_tamper_detected(self, world):
        _, _, enclave, auditor, _ = world
        auditor.approve_measurement(enclave.measurement)
        cert = setup_trust(enclave, auditor)
        from dataclasses import replace
        forged = replace(cert, device_id="evil-device")
        with pytest.raises(AttestationError):
            forged.verify(auditor.ca_public_key)

    def test_wrong_ca_key_detected(self, world, rng):
        _, _, enclave, auditor, _ = world
        auditor.approve_measurement(enclave.measurement)
        cert = setup_trust(enclave, auditor)
        with pytest.raises(AttestationError):
            cert.verify(ecdsa.generate_keypair(rng).public_key())


class TestProvisioning:
    def test_user_receives_key(self, world, group):
        _, _, enclave, auditor, rng = world
        auditor.approve_measurement(enclave.measurement)
        cert = setup_trust(enclave, auditor)
        enclave.call("setup_system", 8)
        raw = provision_user_key(enclave, cert, auditor.ca_public_key,
                                 "alice", rng)
        from repro import ibbe
        from repro.pairing.group import G1Element
        usk = ibbe.IbbeUserKey("alice", G1Element.decode(group, raw))
        # The key actually works.
        msk_raw = enclave.call("extract_user_key_raw", "alice")
        assert msk_raw == raw

    def test_mismatched_certificate_rejected(self, world, group):
        device, ias, enclave, auditor, rng = world
        auditor.approve_measurement(enclave.measurement)
        cert = setup_trust(enclave, auditor)
        # The same enclave build on a different platform derives a
        # different identity key, so the certificate does not transfer.
        other_device = SgxDevice(rng=DeterministicRng("imposter-device"))
        other = IbbeEnclave.load(other_device, {"pairing_group": group})
        other.call("setup_system", 8)
        with pytest.raises(AttestationError, match="different"):
            provision_user_key(other, cert, auditor.ca_public_key,
                               "alice", rng)

    def test_identity_stable_across_restart(self, world, group):
        """Same build + same platform ⇒ same certified identity (the
        property the persistent CLI deployment relies on)."""
        device, _, enclave, _, _ = world
        twin = IbbeEnclave.load(device, {"pairing_group": group})
        assert twin.call("get_public_key") == enclave.call("get_public_key")

    def test_malformed_request_rejected(self, world):
        _, _, enclave, _, rng = world
        enclave.call("setup_system", 8)
        from repro.crypto import ecies
        enclave_key = ecies.EciesPublicKey.decode(
            enclave.call("get_public_key")
        )
        garbage = enclave_key.encrypt(b"{not json", rng, aad=b"usk-request")
        with pytest.raises(AttestationError):
            enclave.call("provision_user_key", garbage)


class TestCounters:
    def test_monotonic(self):
        svc = MonotonicCounterService()
        svc.create("c")
        assert svc.increment("c") == 1
        assert svc.increment("c") == 2
        assert svc.read("c") == 2

    def test_duplicate_create(self):
        svc = MonotonicCounterService()
        svc.create("c")
        with pytest.raises(EnclaveError):
            svc.create("c")

    def test_unknown_counter(self):
        svc = MonotonicCounterService()
        with pytest.raises(EnclaveError):
            svc.increment("missing")
        with pytest.raises(EnclaveError):
            svc.read("missing")
