"""Property test: concurrent administration converges (linearizability).

Random interleavings of operations from two administrators — with
deliberately stale caches between them — must always converge to the
reference membership, with every surviving member able to derive one
shared key.  The descriptor OCC + reload-and-retry loop is what makes
this hold.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.multiadmin import ConcurrentAdministrator
from repro.errors import MembershipError
from tests.conftest import make_system
from tests.test_multiadmin import make_second_admin

POOL = [f"u{i}" for i in range(10)]

interleavings = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),          # which admin
        st.sampled_from(["add", "remove", "rekey"]),
        st.integers(min_value=0, max_value=len(POOL) - 1),
    ),
    min_size=1, max_size=10,
)


@given(ops=interleavings)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_two_admins_converge(ops):
    system = make_system("occ-prop", capacity=3)
    admin_a = ConcurrentAdministrator(system.admin)
    admin_b = ConcurrentAdministrator(make_second_admin(system, "occ-prop-b"))
    admins = [admin_a, admin_b]

    admin_a.create_group("g", ["u0"])
    admin_b.refresh("g")
    reference = {"u0"}

    for which, kind, index in ops:
        admin = admins[which]
        user = POOL[index]
        try:
            if kind == "add":
                if user in reference:
                    continue
                admin.add_user("g", user)
                reference.add(user)
            elif kind == "remove":
                if user not in reference or len(reference) == 1:
                    continue
                admin.remove_user("g", user)
                reference.discard(user)
            else:
                admin.rekey("g")
        except MembershipError:
            # The acting admin's cache was stale in a semantically
            # conflicting way (e.g. it did not know the user existed);
            # refresh and re-apply once — the realistic recovery.
            admin.refresh("g")
            if kind == "add" and user not in set(
                admin.admin.members("g")
            ):
                admin.add_user("g", user)
                reference.add(user)
            elif kind == "remove" and user in set(
                admin.admin.members("g")
            ) and len(reference) > 1:
                admin.remove_user("g", user)
                reference.discard(user)

    # Both admins' reloaded views agree with the reference...
    for admin in admins:
        state = admin.admin.load_group_from_cloud("g")
        assert set(state.table.all_members()) == reference
    # ...and the members actually share a key.
    sample = sorted(reference)[:2]
    keys = set()
    for user in sample:
        client = system.make_client("g", user)
        client.sync()
        keys.add(client.current_group_key())
    assert len(keys) == 1
