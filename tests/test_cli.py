"""CLI integration tests (each command invocation builds a fresh process-
like deployment from the state directory)."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dirs(tmp_path):
    state = tmp_path / "state"
    cloud = tmp_path / "cloud"
    return str(state), str(cloud)


def run(*argv) -> int:
    return main(list(argv))


@pytest.fixture()
def initialized(dirs):
    state, cloud = dirs
    assert run("init", "--state", state, "--cloud", cloud,
               "--params", "toy64", "--capacity", "3", "--bound", "8") == 0
    return state, cloud


class TestInit:
    def test_creates_state_files(self, initialized, tmp_path):
        state, _ = initialized
        from pathlib import Path
        names = {p.name for p in Path(state).iterdir()}
        assert {"config.json", "device-secret.bin", "sealed-msk.bin",
                "public-key.bin", "admin-signing.key"} <= names

    def test_refuses_double_init(self, initialized):
        state, cloud = initialized
        assert run("init", "--state", state, "--cloud", cloud) == 2

    def test_force_reinit(self, initialized):
        state, cloud = initialized
        assert run("init", "--state", state, "--cloud", cloud,
                   "--force") == 0

    def test_no_plaintext_secrets_in_state(self, initialized):
        """The state directory holds no unsealed enclave secrets: the MSK
        file must be a sealed blob, not key material."""
        state, _ = initialized
        from pathlib import Path
        sealed = (Path(state) / "sealed-msk.bin").read_bytes()
        assert sealed.startswith(b"SGXSEAL1")


class TestGroupLifecycle:
    def test_full_lifecycle(self, initialized, capsys):
        state, cloud = initialized
        assert run("create-group", "--state", state, "--cloud", cloud,
                   "team", "alice", "bob", "carol") == 0
        assert run("add-user", "--state", state, "--cloud", cloud,
                   "team", "dave") == 0
        assert run("remove-user", "--state", state, "--cloud", cloud,
                   "team", "bob") == 0
        assert run("show", "--state", state, "--cloud", cloud, "team") == 0
        out = capsys.readouterr().out
        assert "alice" in out and "bob" not in out.split("group")[-1]

    def test_show_all_groups(self, initialized, capsys):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud, "g1", "a")
        run("create-group", "--state", state, "--cloud", cloud, "g2", "b")
        assert run("show", "--state", state, "--cloud", cloud) == 0
        out = capsys.readouterr().out
        assert "g1" in out and "g2" in out

    def test_duplicate_add_fails_cleanly(self, initialized):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud, "g", "a")
        assert run("add-user", "--state", state, "--cloud", cloud,
                   "g", "a") == 1

    def test_rekey(self, initialized):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud, "g", "a")
        assert run("rekey", "--state", state, "--cloud", cloud, "g") == 0

    def test_delete_group(self, initialized, capsys):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud, "g", "a")
        assert run("delete-group", "--state", state, "--cloud", cloud,
                   "g") == 0
        capsys.readouterr()
        assert run("show", "--state", state, "--cloud", cloud) == 0
        assert "g:" not in capsys.readouterr().out


class TestClientFlow:
    def test_provision_and_derive(self, initialized, tmp_path, capsys):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud,
            "team", "alice", "bob")
        key_file = tmp_path / "alice.key"
        assert run("provision", "--state", state, "--cloud", cloud,
                   "alice", "--out", str(key_file)) == 0
        assert key_file.exists()
        bundle = json.loads(
            key_file.with_suffix(".key.bundle.json").read_text()
        )
        assert bundle["identity"] == "alice"
        capsys.readouterr()

        assert run("client-key", "--cloud", cloud,
                   "--user-key", str(key_file), "team", "alice") == 0
        key_hex_1 = capsys.readouterr().out.strip()
        assert len(key_hex_1) == 64

        # Rotation is visible to the client.
        run("remove-user", "--state", state, "--cloud", cloud,
            "team", "bob")
        capsys.readouterr()
        assert run("client-key", "--cloud", cloud,
                   "--user-key", str(key_file), "team", "alice") == 0
        key_hex_2 = capsys.readouterr().out.strip()
        assert key_hex_2 != key_hex_1

    def test_revoked_client_fails(self, initialized, tmp_path, capsys):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud,
            "team", "alice", "bob")
        key_file = tmp_path / "bob.key"
        run("provision", "--state", state, "--cloud", cloud,
            "bob", "--out", str(key_file))
        run("remove-user", "--state", state, "--cloud", cloud,
            "team", "bob")
        capsys.readouterr()
        assert run("client-key", "--cloud", cloud,
                   "--user-key", str(key_file), "team", "bob") == 1

    def test_identity_mismatch_rejected(self, initialized, tmp_path):
        state, cloud = initialized
        run("create-group", "--state", state, "--cloud", cloud,
            "team", "alice", "bob")
        key_file = tmp_path / "alice.key"
        run("provision", "--state", state, "--cloud", cloud,
            "alice", "--out", str(key_file))
        assert run("client-key", "--cloud", cloud,
                   "--user-key", str(key_file), "team", "bob") == 2


class TestStateReuseAcrossInvocations:
    def test_sealed_state_restores(self, initialized):
        """Every command builds a fresh Deployment; the sealed MSK must
        keep working across them (same simulated platform)."""
        state, cloud = initialized
        for i in range(3):
            assert run("create-group", "--state", state, "--cloud", cloud,
                       f"g{i}", "a", "b") == 0
        assert run("show", "--state", state, "--cloud", cloud) == 0
