"""EPC model tests: allocation, residency, paging, cost accounting."""

import pytest

from repro.errors import EPCError
from repro.sgx.epc import PAGE_SIZE, EpcModel


def small_epc(pages: int = 4) -> EpcModel:
    return EpcModel(capacity_bytes=pages * PAGE_SIZE, fault_cost_cycles=1000)


class TestAllocation:
    def test_allocate_and_free(self):
        epc = small_epc()
        handle = epc.allocate(100)
        assert epc.stats.allocated_bytes == 100
        epc.free(handle)
        assert epc.stats.allocated_bytes == 0

    def test_peak_tracking(self):
        epc = small_epc()
        h1 = epc.allocate(1000)
        h2 = epc.allocate(2000)
        epc.free(h1)
        assert epc.stats.peak_allocated_bytes == 3000
        assert epc.stats.allocated_bytes == 2000
        epc.free(h2)

    def test_invalid_allocation(self):
        with pytest.raises(EPCError):
            small_epc().allocate(0)

    def test_double_free(self):
        epc = small_epc()
        handle = epc.allocate(10)
        epc.free(handle)
        with pytest.raises(EPCError):
            epc.free(handle)

    def test_capacity_below_page_rejected(self):
        with pytest.raises(EPCError):
            EpcModel(capacity_bytes=100)


class TestAccessAccounting:
    def test_first_touch_faults(self):
        epc = small_epc()
        handle = epc.allocate(PAGE_SIZE)
        epc.touch(handle, 100)
        assert epc.stats.page_faults == 1

    def test_resident_retouch_no_fault(self):
        epc = small_epc()
        handle = epc.allocate(PAGE_SIZE)
        epc.touch(handle, 100)
        epc.touch(handle, 100)
        assert epc.stats.page_faults == 1

    def test_read_write_overheads_differ(self):
        epc = small_epc()
        handle = epc.allocate(PAGE_SIZE)
        epc.touch(handle, 100)  # fault once
        read_cost = epc.touch(handle, 1000, write=False)
        write_cost = epc.touch(handle, 1000, write=True)
        assert read_cost > write_cost  # 102 % vs 19.5 % overhead

    def test_bounds_checked(self):
        epc = small_epc()
        handle = epc.allocate(PAGE_SIZE)
        with pytest.raises(EPCError):
            epc.touch(handle, PAGE_SIZE + 1)

    def test_unknown_handle(self):
        with pytest.raises(EPCError):
            small_epc().touch(42, 1)

    def test_byte_counters(self):
        epc = small_epc()
        handle = epc.allocate(PAGE_SIZE)
        epc.touch(handle, 100, write=False)
        epc.touch(handle, 60, write=True)
        assert epc.stats.read_bytes == 100
        assert epc.stats.written_bytes == 60


class TestPaging:
    def test_working_set_beyond_capacity_evicts(self):
        epc = small_epc(pages=2)
        handles = [epc.allocate(PAGE_SIZE) for _ in range(4)]
        for handle in handles:
            epc.touch(handle, 10)
        assert epc.stats.evictions == 2
        assert epc.stats.resident_pages == 2

    def test_lru_order(self):
        epc = small_epc(pages=2)
        h1, h2, h3 = (epc.allocate(PAGE_SIZE) for _ in range(3))
        epc.touch(h1, 1)
        epc.touch(h2, 1)
        epc.touch(h1, 1)          # refresh h1
        epc.touch(h3, 1)          # evicts h2 (LRU)
        faults_before = epc.stats.page_faults
        epc.touch(h1, 1)          # still resident: no new fault
        assert epc.stats.page_faults == faults_before
        epc.touch(h2, 1)          # was evicted: faults again
        assert epc.stats.page_faults == faults_before + 1

    def test_fault_cost_charged(self):
        epc = small_epc(pages=1)
        h1 = epc.allocate(PAGE_SIZE)
        h2 = epc.allocate(PAGE_SIZE)
        epc.touch(h1, 1)
        baseline = epc.stats.cycles
        epc.touch(h2, 1)  # fault + eviction
        assert epc.stats.cycles - baseline > 1000  # ≥ one fault cost

    def test_snapshot_keys(self):
        snap = small_epc().stats.snapshot()
        assert {"allocated_bytes", "page_faults", "cycles"} <= set(snap)


class TestEnclaveMetadataScenario:
    """The §III-B motivation: HE metadata blows the EPC, IBBE's does not."""

    def test_large_metadata_pays_paging(self):
        epc = EpcModel(capacity_bytes=64 * PAGE_SIZE)
        # "HE" enclave: metadata linear in group size (1 KB per user, 1000
        # users = ~250 pages >> 64-page EPC).
        he_handle = epc.allocate(1000 * 1024)
        epc.touch(he_handle, 1000 * 1024)
        he_faults = epc.stats.page_faults
        # "IBBE" enclave: constant metadata (a few hundred bytes).
        epc2 = EpcModel(capacity_bytes=64 * PAGE_SIZE)
        ibbe_handle = epc2.allocate(512)
        epc2.touch(ibbe_handle, 512)
        assert he_faults > 100 * epc2.stats.page_faults
