"""Tests for primality testing and prime generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.errors import MathError
from repro.mathutils.primes import (
    gen_prime,
    gen_safe_prime,
    is_probable_prime,
    next_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 65537, 2_147_483_647, (1 << 127) - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1729, 65536, 2_147_483_649]
# Carmichael numbers, the classic Fermat-test traps.
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_primes_accepted(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not is_probable_prime(c)

    @pytest.mark.parametrize("c", CARMICHAELS)
    def test_carmichael_rejected(self, c):
        assert not is_probable_prime(c)

    @given(st.integers(min_value=2, max_value=3000))
    @settings(max_examples=100)
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n ** 0.5) + 1)) and n >= 2
        assert is_probable_prime(n) == by_trial

    def test_large_probabilistic_path(self):
        # 2^521 - 1 is a Mersenne prime; exercises the >bound branch.
        assert is_probable_prime((1 << 521) - 1)
        assert not is_probable_prime(((1 << 521) - 1) * 3)


class TestNextPrime:
    def test_small(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(7) == 11
        assert next_prime(89) == 97

    def test_preserves_strictness(self):
        assert next_prime(97) == 101


class TestGenPrime:
    def test_bit_length_exact(self, rng):
        for bits in (16, 32, 64, 128):
            p = gen_prime(bits, rng.randint_below)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_condition_respected(self, rng):
        p = gen_prime(32, rng.randint_below, condition=lambda c: c % 4 == 3)
        assert p % 4 == 3

    def test_too_small_raises(self, rng):
        with pytest.raises(MathError):
            gen_prime(1, rng.randint_below)

    def test_deterministic_given_rng(self):
        a = gen_prime(48, DeterministicRng("x").randint_below)
        b = gen_prime(48, DeterministicRng("x").randint_below)
        assert a == b


class TestGenSafePrime:
    def test_structure(self, rng):
        p = gen_safe_prime(24, rng.randint_below)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
