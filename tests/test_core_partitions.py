"""Partition-table bookkeeping tests (paper §IV-C mechanics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import PartitionTable
from repro.crypto.rng import DeterministicRng
from repro.errors import MembershipError, ParameterError


class TestBuild:
    def test_exact_split(self):
        table = PartitionTable.build([f"u{i}" for i in range(6)], 3)
        assert table.partition_count == 2
        assert len(table) == 6
        assert table.members_of(0) == ["u0", "u1", "u2"]

    def test_ragged_split(self):
        table = PartitionTable.build([f"u{i}" for i in range(7)], 3)
        assert table.partition_count == 3
        assert table.members_of(2) == ["u6"]

    def test_empty(self):
        table = PartitionTable.build([], 3)
        assert table.partition_count == 0
        assert len(table) == 0

    def test_duplicates_rejected(self):
        with pytest.raises(MembershipError):
            PartitionTable.build(["a", "a"], 3)

    def test_bad_capacity(self):
        with pytest.raises(ParameterError):
            PartitionTable.build(["a"], 0)


class TestMutation:
    def test_add_to_partition(self):
        table = PartitionTable.build(["a", "b"], 3)
        table.add_to_partition(0, "c")
        assert table.partition_of("c") == 0
        with pytest.raises(MembershipError):
            table.add_to_partition(0, "d")  # now full

    def test_add_duplicate_rejected(self):
        table = PartitionTable.build(["a"], 3)
        with pytest.raises(MembershipError):
            table.add_to_partition(0, "a")
        with pytest.raises(MembershipError):
            table.add_new_partition("a")

    def test_add_new_partition(self):
        table = PartitionTable.build(["a"], 1)
        pid = table.add_new_partition("b")
        assert table.partition_of("b") == pid
        assert table.partition_count == 2

    def test_remove(self):
        table = PartitionTable.build(["a", "b", "c"], 2)
        hosting = table.remove("b")
        assert hosting == 0
        assert "b" not in table
        assert table.members_of(0) == ["a"]

    def test_remove_last_member_drops_partition(self):
        table = PartitionTable.build(["a", "b", "c"], 2)
        table.remove("c")
        assert table.partition_count == 1
        with pytest.raises(MembershipError):
            table.members_of(1)

    def test_remove_unknown(self):
        table = PartitionTable.build(["a"], 2)
        with pytest.raises(MembershipError):
            table.remove("z")


class TestQueries:
    def test_pick_open_partition(self):
        table = PartitionTable.build(["a", "b", "c"], 2)
        rng = DeterministicRng("pick")
        pid = table.pick_open_partition(rng)
        assert pid == 1  # the only one with room

    def test_pick_when_full(self):
        table = PartitionTable.build(["a", "b"], 2)
        assert table.pick_open_partition(DeterministicRng("x")) is None

    def test_all_members_order_stable(self):
        table = PartitionTable.build(["a", "b", "c"], 2)
        assert table.all_members() == ["a", "b", "c"]


class TestOccupancyHeuristic:
    def test_full_table_no_repartition(self):
        table = PartitionTable.build([f"u{i}" for i in range(9)], 3)
        assert not table.needs_repartition()

    def test_single_partition_never(self):
        table = PartitionTable.build(["a"], 3)
        assert not table.needs_repartition()

    def test_sparse_triggers(self):
        table = PartitionTable.build([f"u{i}" for i in range(9)], 3)
        # Hollow out: remove two members from each of two partitions.
        for user in ["u0", "u1", "u3", "u4"]:
            table.remove(user)
        # Now partitions: [u2], [u5], [u6,u7,u8] — 2/3 below threshold and
        # 5 members fit into 2 partitions < 3.
        assert table.needs_repartition()

    def test_sparse_but_unmergeable_does_not_trigger(self):
        table = PartitionTable.build([f"u{i}" for i in range(4)], 3)
        # [u0,u1,u2], [u3] → only one below-threshold partition out of two;
        # and 4 members still need 2 partitions.
        table.remove("u2")
        assert not table.needs_repartition()

    def test_occupancy_value(self):
        table = PartitionTable.build([f"u{i}" for i in range(4)], 4)
        assert table.occupancy() == 1.0
        table.remove("u0")
        assert table.occupancy() == 0.75


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]),
                  st.integers(min_value=0, max_value=30)),
        max_size=40,
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_invariants_under_random_ops(ops, capacity):
    """user→partition map and partition contents always stay consistent."""
    table = PartitionTable(capacity=capacity)
    rng = DeterministicRng("inv")
    present = set()
    for kind, index in ops:
        user = f"u{index}"
        if kind == "add" and user not in present:
            pid = table.pick_open_partition(rng)
            if pid is None:
                table.add_new_partition(user)
            else:
                table.add_to_partition(pid, user)
            present.add(user)
        elif kind == "remove" and user in present:
            table.remove(user)
            present.discard(user)
    assert set(table.all_members()) == present
    assert len(table) == len(present)
    for pid in table.partition_ids:
        members = table.members_of(pid)
        assert 1 <= len(members) <= capacity
        for user in members:
            assert table.partition_of(user) == pid
