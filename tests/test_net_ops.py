"""Observability over the network: trace propagation + ops surface.

Covers the distributed-tracing contract (client trace context on the
wire, server handler spans shipped back and stitched onto negative
per-connection lanes, one shared trace id), the read-only operational
endpoints (``ops.stats`` / ``ops.health``) and their CLI consumers, the
per-request log, and the invariant that none of it perturbs store
bytes.
"""

import json

import pytest

from repro import obs
from repro.cloud import CloudStore
from repro.errors import NotFoundError
from repro.net import RemoteCloudStore, RequestLog, ServerThread
from repro.net import wire
from repro.workloads.chaos import cloud_digest


@pytest.fixture
def served():
    inner = CloudStore()
    server = ServerThread(inner)
    url = server.start()
    store = RemoteCloudStore(url)
    yield inner, server, store
    store.close()
    server.stop()


@pytest.fixture
def clean_tracer():
    tracer = obs.tracer()
    tracer.reset()
    yield tracer
    tracer.disable()
    tracer.reset()


# ---------------------------------------------------------------------------
# Feature negotiation + ops surface
# ---------------------------------------------------------------------------

class TestOpsSurface:
    def test_hello_advertises_trace_and_ops(self, served):
        _, _, store = served
        store.head_sequence()          # forces connect + hello
        assert wire.FEATURE_TRACE in store.server_features
        assert wire.FEATURE_OPS in store.server_features

    def test_server_stats_snapshot(self, served):
        _, _, store = served
        store.put("/g/a", b"x")
        store.get("/g/a")
        with pytest.raises(NotFoundError):
            store.get("/missing")
        stats = store.server_stats()

        assert stats["server"] == "repro-store"
        assert stats["protocol"] == wire.PROTOCOL_VERSION
        assert stats["uptime_s"] >= 0.0
        assert stats["connections"]["active"] >= 1
        assert stats["connections"]["total"] >= 1
        assert stats["requests"]["total"] >= 3
        assert stats["requests"]["errors"] >= 1
        assert stats["requests"]["bytes_in"] > 0
        assert stats["requests"]["bytes_out"] > 0
        # Rolling SLO windows, per method and combined.
        methods = stats["slo"]["methods"]
        assert "store.put" in methods and "store.get" in methods
        get_window = methods["store.get"]
        assert get_window["count"] == 2 and get_window["errors"] == 1
        assert get_window["p50_ms"] >= 0.0
        assert stats["slo"]["all"]["count"] >= 3
        # Server-side counters, including per-method error counters.
        counters = stats["metrics"]
        assert counters["net.server.requests"] >= 3
        assert counters["net.server.method.store.get.errors"] == 1
        assert counters["net.server.method.store.get.requests"] == 2
        assert counters["net.server.connections.active"] >= 1
        # No request log configured on this server.
        assert stats["request_log"] == {"enabled": False}

    def test_server_health_ok(self, served):
        _, _, store = served
        store.put("/g/a", b"x")
        health = store.server_health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0
        assert health["checks"]["store"] == "ok"
        assert health["checks"]["head_sequence"] == 1

    def test_stats_visible_to_plain_clients(self, served):
        """ops.* are read-only and version-1: no handshake changes, so
        an untraced client can call them too."""
        _, _, store = served
        store.trace_propagation = False
        store.put("/g/a", b"x")
        stats = store.server_stats()
        assert stats["requests"]["total"] >= 1


# ---------------------------------------------------------------------------
# Distributed tracing across the wire
# ---------------------------------------------------------------------------

class TestTraceStitching:
    def test_server_spans_stitched_under_client_rpc(self, served,
                                                    clean_tracer):
        _, _, store = served
        clean_tracer.enable()
        store.put("/g/a", b"payload")
        store.get("/g/a")
        clean_tracer.disable()

        spans = clean_tracer.spans()
        by_id = {s.span_id: s for s in spans}
        client = [s for s in spans if s.name.startswith("net.rpc.")]
        server = [s for s in spans if s.name.startswith("net.server.")]
        assert client and server
        # One trace id across both processes.
        trace_id = clean_tracer.trace_id
        for s in server:
            assert s.attrs["trace_id"] == trace_id
            # Negative per-connection lane.
            assert s.tid == -store.lane
            # Parent link lands on the client's RPC span.
            parent = by_id[s.parent_id]
            assert parent.name.startswith("net.rpc.")
            assert parent.tid == 0
        # The store's own work is captured server-side and nests under
        # the handler span.
        cloud_spans = [s for s in spans
                       if s.name.startswith("cloud.") and s.tid < 0]
        assert cloud_spans
        for s in cloud_spans:
            assert by_id[s.parent_id].name.startswith("net.server.")
        merged = store.metrics.registry.counters_snapshot()
        assert merged["net.rpc.remote_spans"] == len(
            [s for s in spans if s.tid == -store.lane])

    def test_error_responses_ship_spans_too(self, served, clean_tracer):
        _, _, store = served
        clean_tracer.enable()
        with pytest.raises(NotFoundError):
            store.get("/missing")
        clean_tracer.disable()
        server = [s for s in clean_tracer.spans()
                  if s.name.startswith("net.server.")]
        assert server
        assert any(s.error == "NotFoundError" for s in server)

    def test_server_counter_deltas_kept_separate(self, served,
                                                 clean_tracer):
        _, _, store = served
        clean_tracer.enable()
        store.put("/g/a", b"x")
        store.get("/g/a")
        clean_tracer.disable()
        shipped = store.server_metrics.snapshot()
        assert shipped.get("cloud.requests", 0) == 2
        # The client-side mirror keeps its own count of the same two
        # operations: if server deltas were folded in, it would read 4.
        client_counters = store.metrics.registry.counters_snapshot()
        assert client_counters["cloud.requests"] == 2

    def test_disabled_tracing_sends_no_context(self, served,
                                               clean_tracer):
        """Tracing off -> no trace key on the wire, no telemetry back,
        remote_spans stays zero."""
        _, _, store = served
        store.put("/g/a", b"x")
        store.get("/g/a")
        counters = store.metrics.registry.counters_snapshot()
        assert counters["net.rpc.remote_spans"] == 0
        assert store.server_metrics.snapshot() == {}

    def test_propagation_opt_out(self, served, clean_tracer):
        _, _, store = served
        store.trace_propagation = False
        clean_tracer.enable()
        store.put("/g/a", b"x")
        clean_tracer.disable()
        # ServerThread shares this process, so the server's own plain
        # spans land in the global tracer — but nothing was shipped
        # back and stitched onto the connection lane.
        assert not [s for s in clean_tracer.spans()
                    if s.tid == -store.lane]
        counters = store.metrics.registry.counters_snapshot()
        assert counters["net.rpc.remote_spans"] == 0
        assert store.server_metrics.snapshot() == {}

    def test_tracing_does_not_change_store_bytes(self, clean_tracer):
        """Digest equality between a traced and an untraced run: the
        trace context rides the envelope, never the store."""
        def run(traced):
            inner = CloudStore()
            server = ServerThread(inner)
            store = RemoteCloudStore(server.start())
            if traced:
                clean_tracer.reset()
                clean_tracer.enable()
            store.put("/g/a", b"one")
            store.put("/g/b", b"two")
            store.delete("/g/a")
            store.put("/g/c", b"three", expected_version=0)
            if traced:
                clean_tracer.disable()
            digest = cloud_digest(inner)
            store.close()
            server.stop()
            return digest

        assert run(traced=True) == run(traced=False)


# ---------------------------------------------------------------------------
# Request log
# ---------------------------------------------------------------------------

class TestRequestLog:
    def test_records_requests_and_errors(self, tmp_path):
        log_path = tmp_path / "requests.jsonl"
        inner = CloudStore()
        server = ServerThread(inner,
                              request_log=RequestLog(str(log_path),
                                                     slow_ms=0.0))
        store = RemoteCloudStore(server.start())
        store.put("/g/a", b"x")
        with pytest.raises(NotFoundError):
            store.get("/missing")
        stats = store.server_stats()
        store.close()
        server.stop()

        rows = [json.loads(line)
                for line in log_path.read_text().splitlines()]
        methods = [r["method"] for r in rows]
        assert "store.put" in methods and "store.get" in methods
        failed = next(r for r in rows if r["outcome"] == "not_found")
        assert failed["method"] == "store.get"
        assert failed["bytes_in"] > 0 and failed["bytes_out"] > 0
        assert failed["peer"].startswith("127.0.0.1:")
        # slow_ms=0 flags everything as slow.
        assert all(r["slow"] for r in rows)
        # The stats snapshot embeds the log status and tail.
        rlog = stats["request_log"]
        assert rlog["enabled"] and rlog["path"] == str(log_path)
        assert rlog["records"] >= len(rows) - 1
        assert rlog["errors"] >= 1
        assert rlog["tail"]

    def test_in_memory_log_and_tail_bound(self):
        log = RequestLog(tail_size=3)
        for i in range(5):
            log.record(request_id=i, method="store.get", latency_ms=1.0)
        assert log.records == 5
        assert [r["request_id"] for r in log.tail()] == [2, 3, 4]
        assert log.path is None

    def test_traced_requests_carry_trace_id(self, served, clean_tracer):
        inner = CloudStore()
        log = RequestLog()
        server = ServerThread(inner, request_log=log)
        store = RemoteCloudStore(server.start())
        clean_tracer.enable()
        store.put("/g/a", b"x")
        clean_tracer.disable()
        store.close()
        server.stop()
        puts = [r for r in log.tail() if r["method"] == "store.put"]
        assert puts and puts[0]["trace_id"] == clean_tracer.trace_id


# ---------------------------------------------------------------------------
# CLI consumers
# ---------------------------------------------------------------------------

class TestCli:
    def test_stats_remote_and_health_exit_codes(self, served, capsys):
        from repro.cli import main

        _, server, store = served
        store.put("/g/a", b"x")

        assert main(["stats", "--store-url", server.url]) == 0
        out = capsys.readouterr().out
        assert "repro-store" in out and "store.put" in out

        assert main(["stats", "--store-url", server.url,
                     "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["requests"]["total"] >= 1

        assert main(["stats", "--store-url", server.url,
                     "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "repro_net_server_requests" in prom

        assert main(["health", "--store-url", server.url]) == 0
        assert capsys.readouterr().out.startswith("ok")

        assert main(["health", "--store-url", server.url,
                     "--json"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"

    def test_health_unreachable_exits_2(self, capsys):
        import socket

        from repro.cli import main

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        assert main(["health", "--store-url",
                     f"tcp://127.0.0.1:{port}", "--timeout", "1"]) == 2

    def test_stats_requires_a_source(self, capsys):
        from repro.cli import main

        assert main(["stats"]) == 1
        assert "store-url" in capsys.readouterr().err
