"""Elliptic-curve group-law and encoding tests (P-256 and a toy curve)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRng
from repro.ec import P256, Curve, Point, hash_to_point
from repro.errors import CurveError, ParameterError

scalars = st.integers(min_value=0, max_value=P256.order - 1)
small_scalars = st.integers(min_value=0, max_value=1000)


class TestCurveConstruction:
    def test_singular_curve_rejected(self):
        with pytest.raises(ParameterError):
            Curve(p=23, a=0, b=0)

    def test_point_validation(self):
        with pytest.raises(CurveError):
            P256.point(1, 1)

    def test_generator_on_curve(self):
        assert P256.generator.is_on_curve()

    def test_generator_has_order_n(self):
        assert (P256.generator * P256.order).is_infinity()


class TestGroupLaws:
    @given(small_scalars, small_scalars)
    @settings(max_examples=20, deadline=None)
    def test_addition_commutes(self, a, b):
        g = P256.generator
        assert g * a + g * b == g * b + g * a

    @given(small_scalars, small_scalars)
    @settings(max_examples=20, deadline=None)
    def test_scalar_distributes(self, a, b):
        g = P256.generator
        assert g * a + g * b == g * (a + b)

    def test_identity_element(self):
        g = P256.generator
        inf = P256.infinity()
        assert g + inf == g
        assert inf + g == g
        assert inf + inf == inf

    def test_inverse_element(self):
        g = P256.generator
        assert (g + (-g)).is_infinity()

    def test_doubling_matches_addition(self):
        g = P256.generator
        assert g.double() == g + g
        assert g * 2 == g + g

    def test_negative_scalar(self):
        g = P256.generator
        assert g * -3 == -(g * 3)

    def test_zero_scalar(self):
        assert (P256.generator * 0).is_infinity()

    def test_order_of_2y_zero_point(self):
        # A curve where a point has y = 0 (order 2): y² = x³ - x over F_23.
        curve = Curve(p=23, a=-1, b=0)
        p2 = curve.point(1, 0)
        assert (p2 + p2).is_infinity()


class TestMultiMul:
    @given(st.lists(st.tuples(small_scalars, small_scalars),
                    min_size=0, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_matches_naive_sum(self, pairs):
        g = P256.generator
        terms = [(k, g * s) for k, s in pairs]
        expected = P256.infinity()
        for k, pt in terms:
            expected = expected + pt * k
        assert P256.multi_mul(terms) == expected

    def test_empty(self):
        assert P256.multi_mul([]).is_infinity()

    def test_negative_scalars(self):
        g = P256.generator
        assert P256.multi_mul([(-2, g), (5, g)]) == g * 3


class TestEncoding:
    def test_roundtrip(self):
        point = P256.generator * 12345
        assert Point.decode(P256, point.encode()) == point

    def test_infinity_roundtrip(self):
        inf = P256.infinity()
        assert Point.decode(P256, inf.encode()).is_infinity()

    def test_parity_preserved(self):
        for k in (2, 3, 7, 1001):
            point = P256.generator * k
            decoded = Point.decode(P256, point.encode())
            assert decoded.y == point.y

    def test_malformed_rejected(self):
        with pytest.raises(CurveError):
            Point.decode(P256, b"\x09" + bytes(32))

    def test_lift_x(self):
        point = P256.generator * 99
        lifted = P256.lift_x(point.x, point.y % 2)
        assert lifted == point


class TestHashToPoint:
    def test_deterministic(self):
        a = hash_to_point(P256, b"alice")
        b = hash_to_point(P256, b"alice")
        assert a == b

    def test_distinct_inputs_distinct_points(self):
        assert hash_to_point(P256, b"alice") != hash_to_point(P256, b"bob")

    def test_domain_separation(self):
        a = hash_to_point(P256, b"x", domain=b"d1")
        b = hash_to_point(P256, b"x", domain=b"d2")
        assert a != b

    def test_on_curve_and_in_subgroup(self):
        point = hash_to_point(P256, b"carol")
        assert point.is_on_curve()
        assert (point * P256.order).is_infinity()

    def test_cofactor_cleared_on_pairing_curve(self, group):
        point = hash_to_point(group.curve, b"dave")
        assert (point * group.q).is_infinity()
        assert not point.is_infinity()


class TestScalarMulAgainstReference:
    """Cross-check Jacobian ladder against a known P-256 vector."""

    def test_known_multiple(self):
        # k = 2: published doubling of the P-256 generator.
        doubled = P256.generator * 2
        assert doubled.x == int(
            "7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978", 16
        )
        assert doubled.y == int(
            "07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1", 16
        )

    @given(scalars)
    @settings(max_examples=10, deadline=None)
    def test_order_annihilates(self, k):
        point = P256.generator * k
        assert (point * P256.order).is_infinity()
