"""Client-side hardening tests: decrypt-hint caching and freshness."""

import pytest

from repro import ibbe
from repro.core.metadata import descriptor_path
from repro.errors import StaleMetadataError
from tests.conftest import make_system

MEMBERS = [f"user{i}" for i in range(8)]


@pytest.fixture()
def world():
    system = make_system("hardening", capacity=4)
    system.admin.create_group("g", MEMBERS)
    client = system.make_client("g", "user0")
    client.sync()
    return system, client


class TestDecryptHintCache:
    def test_rekeys_do_not_recompute_expansion(self, world):
        system, client = world
        client.current_group_key()
        assert client.expansion_count == 1
        for _ in range(3):
            system.admin.rekey("g")
            client.sync()
            client.current_group_key()
        assert client.decrypt_count == 4
        # The member set never changed: one expansion total.
        assert client.expansion_count == 1

    def test_membership_change_invalidates(self, world):
        system, client = world
        client.current_group_key()
        system.admin.remove_user("g", "user1")  # same partition as user0
        client.sync()
        client.current_group_key()
        assert client.expansion_count == 2

    def test_change_in_other_partition_reuses_hint(self, world):
        system, client = world
        client.current_group_key()
        # user5 lives in the second partition; user0's set is unchanged.
        system.admin.remove_user("g", "user5")
        client.sync()
        client.current_group_key()
        assert client.expansion_count == 1

    def test_hint_results_match_plain_decrypt(self, world, group):
        system, client = world
        record = client.state.record
        ciphertext = ibbe.IbbeCiphertext.decode(group, record.ciphertext)
        usk = system.user_key("user0")
        plain = ibbe.decrypt(system.public_key, usk,
                             list(record.members), ciphertext)
        hint = ibbe.prepare_decryption(system.public_key, usk,
                                       list(record.members))
        assert ibbe.decrypt_with_hint(system.public_key, usk, hint,
                                      ciphertext) == plain

    def test_hint_for_wrong_user_rejected(self, world):
        system, _ = world
        from repro.errors import SchemeError
        hint = ibbe.prepare_decryption(
            system.public_key, system.user_key("user0"), MEMBERS[:4]
        )
        record = system.admin.group_state("g").records[0]
        ciphertext = ibbe.IbbeCiphertext.decode(
            system.public_key.group, record.ciphertext
        )
        with pytest.raises(SchemeError):
            ibbe.decrypt_with_hint(system.public_key,
                                   system.user_key("user1"), hint,
                                   ciphertext)

    def test_cache_window_bounded(self, world):
        system, client = world
        # Force several distinct member sets through the cache.
        for i in range(6):
            system.admin.add_user("g", f"extra{i}")
            client.sync()
            client.current_group_key()
        assert len(client._hints) <= 4


class TestFreshness:
    def test_rollback_detected(self, world):
        system, client = world
        path = descriptor_path("g")
        old_descriptor = system.cloud.get(path).data
        system.admin.remove_user("g", "user1")
        client.sync()
        client.current_group_key()
        # The curious cloud replays the pre-revocation descriptor.
        system.cloud.put(path, old_descriptor)
        with pytest.raises(StaleMetadataError):
            client.sync()

    def test_replay_of_current_descriptor_accepted(self, world):
        system, client = world
        path = descriptor_path("g")
        current = system.cloud.get(path).data
        system.cloud.put(path, current)  # same epoch: no rollback
        client.sync()

    def test_enforcement_can_be_disabled(self, world):
        system, _ = world
        relaxed = system.make_client("g", "user2")
        relaxed.enforce_freshness = False
        relaxed.sync()
        path = descriptor_path("g")
        old_descriptor = system.cloud.get(path).data
        system.admin.remove_user("g", "user3")
        relaxed.sync()
        system.cloud.put(path, old_descriptor)
        relaxed.sync()  # tolerated when explicitly disabled

    def test_epoch_progresses_across_operations(self, world):
        system, client = world
        assert client._highest_epoch == 0
        system.admin.add_user("g", "x1")
        system.admin.remove_user("g", "x1")
        client.sync()
        assert client._highest_epoch == 2
