"""Ablation — cloud latency vs client decrypt cost (paper §VI-A).

The paper argues that IBBE-SGX's slower client decryption "is overshadowed
by the slow cloud response time necessary for clients to update the group
metadata that always precedes a decryption operation".  This bench
quantifies that claim with the latency model: the end-to-end client update
path (long-poll + record fetch + decrypt) under a public-cloud latency
profile vs a zero-latency store.
"""

from __future__ import annotations

import pytest

from repro.bench import format_seconds, time_call
from repro.cloud import LatencyModel
from repro.crypto.rng import DeterministicRng

from conftest import scaled
from repro import quickstart_system


def _client_update_costs(latency, seed: str, capacity: int):
    """Returns (decrypt_seconds, simulated_cloud_ms) for one client
    update after a re-key."""
    system = quickstart_system(
        partition_capacity=capacity, params="std160",
        rng=DeterministicRng(seed), latency=latency,
    )
    members = [f"u{i}" for i in range(capacity)]
    system.admin.create_group("g", members)
    client = system.make_client("g", "u0")
    client.sync()
    client.current_group_key()
    system.admin.rekey("g")

    cloud_ms_before = system.cloud.metrics.simulated_latency_ms
    client.sync()
    _, decrypt_seconds = time_call(client.current_group_key)
    cloud_ms = system.cloud.metrics.simulated_latency_ms - cloud_ms_before
    return decrypt_seconds, cloud_ms


def test_cloud_latency_overshadows_decrypt(sink, benchmark):
    capacity = scaled(64)
    decrypt_s, cloud_ms = _client_update_costs(
        LatencyModel.public_cloud(seed="ablation"), "lat", capacity
    )
    sink.line(
        f"client update @ partition {capacity}: decrypt "
        f"{format_seconds(decrypt_s)} vs simulated cloud round trips "
        f"{cloud_ms:.0f} ms"
    )
    # §VI-A: the metadata round trip dominates the (hint-cached) decrypt.
    assert cloud_ms > decrypt_s * 1000, (
        "cloud response time must overshadow the decrypt cost"
    )

    zero_decrypt_s, zero_cloud_ms = _client_update_costs(
        LatencyModel.disabled(), "nolat", capacity
    )
    sink.line(
        f"  (zero-latency control: decrypt "
        f"{format_seconds(zero_decrypt_s)}, cloud {zero_cloud_ms:.0f} ms)"
    )
    assert zero_cloud_ms == 0.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
