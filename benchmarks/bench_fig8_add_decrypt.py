"""Figure 8 — add-user latency CDF and client decrypt latency.

Paper's observations:

* 8a: add-user is O(1) for both IBBE-SGX and HE; the IBBE-SGX CDF has a
  knee around 0.8 where the slow path (creating a brand-new partition when
  all are full) takes over; HE adds are roughly 2× faster.
* 8b: client decryption grows quadratically with the partition size for
  IBBE-SGX (HE decryption is constant — a single public-key operation).
"""

from __future__ import annotations

import time

import pytest

from repro import ibbe
from repro.baselines import HePkiScheme, HybridGroupManager
from repro.bench import cdf_points, fit_power_law, format_seconds, time_call
from repro.crypto.rng import DeterministicRng

from conftest import (
    footprint_counters,
    footprint_delta,
    make_bench_system,
    scaled,
    traced_breakdown,
)

ADD_COUNT = 60
DECRYPT_SIZES = [32, 64, 128, 256]

# Fixed scale for the operation-pipeline report (not subject to
# REPRO_BENCH_SCALE): a bulk enrollment spanning many partitions.
PIPELINE_JOINERS = 255
PIPELINE_CAPACITY = 16


def test_fig8a_add_user_cdf(sink, benchmark):
    capacity = scaled(8)
    system = make_bench_system("fig8a", capacity, params="std160",
                               auto_repartition=False)
    # Start nearly full so a meaningful fraction of adds takes the
    # new-partition path (the paper's CDF knee at ~0.8).
    initial = [f"seed{i}" for i in range(capacity - 1)]
    system.admin.create_group("g", initial)

    ibbe_latencies = []
    path_taken = []  # "existing" | "new-partition"
    for i in range(scaled(ADD_COUNT)):
        partitions_before = system.admin.group_state("g").table.partition_count
        _, elapsed = time_call(system.admin.add_user, "g", f"new{i}")
        partitions_after = system.admin.group_state("g").table.partition_count
        ibbe_latencies.append(elapsed)
        path_taken.append(
            "new-partition" if partitions_after > partitions_before
            else "existing"
        )

    scheme = HePkiScheme(rng=DeterministicRng("fig8a-he"))
    manager = HybridGroupManager(scheme, rng=DeterministicRng("fig8a-m"))
    for user in initial:
        scheme.register_user(user)
    manager.create_group("g", initial)
    he_latencies = []
    for i in range(scaled(ADD_COUNT)):
        scheme.register_user(f"new{i}")
        _, elapsed = time_call(manager.add_user, "g", f"new{i}")
        he_latencies.append(elapsed)

    rows = []
    for name, samples in (("IBBE-SGX", ibbe_latencies), ("HE", he_latencies)):
        for value, fraction in cdf_points(samples, steps=10):
            rows.append([name, f"{fraction:.1f}", format_seconds(value)])
    sink.table("Fig 8a: add-user latency CDF",
               ["scheme", "CDF", "latency"], rows)

    # Two-path structure: adds that created a new partition (full IBBE
    # encrypt + unseal + envelope) versus O(1) ciphertext extensions.
    fast = [t for t, path in zip(ibbe_latencies, path_taken)
            if path == "existing"]
    slow = [t for t, path in zip(ibbe_latencies, path_taken)
            if path == "new-partition"]
    assert fast and slow, "both Fig 8a paths must occur in the workload"
    fast_mean = sum(fast) / len(fast)
    slow_mean = sum(slow) / len(slow)
    knee = len(fast) / (len(fast) + len(slow))
    sink.line(f"  existing-partition path: {format_seconds(fast_mean)} mean "
              f"({len(fast)} ops); new-partition path: "
              f"{format_seconds(slow_mean)} mean ({len(slow)} ops)")
    sink.line(f"  CDF knee at ~{knee:.2f} (paper: ~0.8)")
    assert slow_mean > 1.15 * fast_mean, (
        "the new-partition path must be visibly slower (the CDF knee)"
    )

    mean_ibbe = sum(ibbe_latencies) / len(ibbe_latencies)
    mean_he = sum(he_latencies) / len(he_latencies)
    sink.line(f"  mean add: IBBE-SGX {format_seconds(mean_ibbe)}, "
              f"HE {format_seconds(mean_he)} (paper: HE ~2x faster)")
    assert mean_he < mean_ibbe, "HE adds should be faster (paper Fig 8a)"

    benchmark.pedantic(lambda: system.admin.add_user("g", "bench-user"),
                       rounds=1, iterations=1)


def test_fig8b_decrypt_latency(std_group, sink, benchmark):
    rng = DeterministicRng("fig8b")
    sizes = [scaled(s) for s in DECRYPT_SIZES]
    msk, pk = ibbe.setup(std_group, max(sizes), rng)

    points = []
    for size in sizes:
        members = [f"u{i}" for i in range(size)]
        bk, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        usk = ibbe.extract(msk, pk, members[size // 2])
        # Min of three runs: scheduler noise must not fake non-convexity.
        samples = []
        for _ in range(3):
            result, elapsed = time_call(ibbe.decrypt, pk, usk, members, ct)
            assert result == bk
            samples.append(elapsed)
        points.append((size, min(samples)))

    # HE decryption for contrast: one ECIES decryption, constant.
    from repro.crypto import ecies
    key = ecies.generate_keypair(rng)
    ct_he = key.public_key().encrypt(bytes(32), rng)
    _, he_elapsed = time_call(key.decrypt, ct_he)

    rows = [[n, format_seconds(t)] for n, t in points]
    rows.append(["HE (any size)", format_seconds(he_elapsed)])
    sink.table("Fig 8b: client decrypt latency per partition size",
               ["partition size", "latency"], rows)

    # Decrypt cost decomposes as c_pair + a·n + b·n²: two pairings
    # (constant), the multi-exponentiation over h^(γ^t) (linear), and the
    # p_i(γ) polynomial expansion (quadratic).  At pure-Python-feasible
    # sizes the constant and linear terms still dominate, so instead of a
    # naive power-law fit we (1) measure the quadratic kernel in isolation
    # and (2) check the total is convex (growing marginal cost).
    from repro.mathutils.poly import monic_linear_product
    kernel_points = []
    for n in (512, 1024, 2048):
        roots = list(range(3, 3 + n))
        _, elapsed = time_call(monic_linear_product, roots, std_group.q)
        kernel_points.append((n, elapsed))
    kernel_fit = fit_power_law(kernel_points)
    sink.line(f"  quadratic kernel fit: {kernel_fit.describe()}")
    assert kernel_fit.exponent > 1.7, "decrypt kernel must be quadratic"

    linear_part = points[0][1] / points[0][0]
    projected_4000 = (
        kernel_fit.predict(4000) + linear_part * 4000
    )
    sink.line(f"  projected decrypt @4000: "
              f"{format_seconds(projected_4000)} (paper: ~2 s)")

    # Convexity of the measured totals.
    for (n1, t1), (n2, t2) in zip(points, points[1:]):
        assert t2 > t1, "decrypt latency must increase with partition size"
    marginal = [
        (t2 - t1) / (n2 - n1)
        for (n1, t1), (n2, t2) in zip(points, points[1:])
    ]
    assert marginal[-1] > marginal[0], (
        "marginal decrypt cost must grow (quadratic term taking over)"
    )
    assert he_elapsed < points[0][1], "HE decrypt must be cheaper (Fig 8b)"

    members = [f"u{i}" for i in range(scaled(32))]
    bk, ct = ibbe.encrypt_msk(msk, pk, members, rng)
    usk = ibbe.extract(msk, pk, members[0])
    benchmark.pedantic(lambda: ibbe.decrypt(pk, usk, members, ct),
                       rounds=1, iterations=1)


def test_fig8c_batch_add_boundary_footprint(sink, benchmark):
    """Operation-pipeline report: enrolling a whole roster via
    ``add_users`` costs one enclave crossing and one cloud commit in the
    pipelined administrator, versus one crossing per touched partition
    and one cloud request per object in the sequential mode."""
    joiners = [f"new{i}" for i in range(PIPELINE_JOINERS)]
    min_partitions = (1 + PIPELINE_JOINERS) // PIPELINE_CAPACITY
    rows = []
    deltas = {}
    for label, pipeline in (("sequential (before)", False),
                            ("pipelined (after)", True)):
        system = make_bench_system(f"fig8c-{int(pipeline)}",
                                   PIPELINE_CAPACITY,
                                   auto_repartition=False,
                                   pipeline=pipeline)
        system.admin.create_group("g", ["seed0"])
        counters = footprint_counters(system)
        _, elapsed = time_call(system.admin.add_users, "g", joiners)
        delta = footprint_delta(counters, footprint_counters(system))
        deltas[pipeline] = delta
        rows.append([label, delta["sgx.crossings"], delta["sgx.ecalls"],
                     delta["cloud.requests"], delta["cloud.batch_commits"],
                     format_seconds(elapsed)])
        state = system.admin.group_state("g")
        assert state.table.partition_count >= min_partitions
    sink.table(
        f"Fig 8c: batch add_users boundary footprint "
        f"({PIPELINE_JOINERS} joiners, capacity {PIPELINE_CAPACITY})",
        ["mode", "crossings", "ecalls", "cloud reqs", "commits",
         "latency"],
        rows,
    )

    after = deltas[True]
    before = deltas[False]
    assert after["sgx.crossings"] == 1, "batch enrollment is one crossing"
    assert after["cloud.requests"] == 1, \
        "batch enrollment is one cloud commit"
    assert after["cloud.batch_commits"] == 1
    # Sequential mode crosses the boundary once per ecall and pays one
    # cloud request per written object (descriptor + each record).
    assert before["sgx.crossings"] >= min_partitions
    assert before["cloud.requests"] >= min_partitions + 1
    # Transport changes, the work does not: same ecalls either way.
    assert after["sgx.ecalls"] == before["sgx.ecalls"]

    # Where the enrollment wall-clock goes: crossing vs cloud vs crypto.
    system = make_bench_system("fig8c-trace", PIPELINE_CAPACITY,
                               auto_repartition=False)
    system.admin.create_group("g", ["seed0"])
    traced_breakdown(sink, "pipelined batch-add time breakdown",
                     lambda: system.admin.add_users("g", joiners))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
