"""Ablation — the partition-size trade-off and the heuristics around it.

§IV-C: "A small partition size reduces the decryption time on the user
side while a larger partition size reduces the number of operations
performed by the administrator."  This bench maps that trade-off curve,
evaluates the re-partitioning heuristic on/off, and checks the adaptive
policy (future-work extension) lands near the measured optimum.
"""

from __future__ import annotations

import pytest

from repro.bench import format_seconds
from repro.core.adaptive import AdaptivePolicy
from repro.workloads import IbbeSgxReplayAdapter, ReplayEngine
from repro.workloads.synthetic import generate_trace

from conftest import make_bench_system, scaled

CAPACITIES = [4, 8, 16, 32, 64]
OPS = 120


@pytest.fixture(scope="module")
def tradeoff_curve():
    n_ops = scaled(OPS)
    initial = [f"init{i}" for i in range(64)]
    trace = generate_trace(n_ops, 0.4, initial_members=initial,
                           seed="ablation-partition")
    curve = []
    for capacity in CAPACITIES:
        system = make_bench_system(f"ablp-{capacity}", capacity,
                                   params="toy64")
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g",
                              decrypt_sample_every=15, seed=f"{capacity}")
        report = engine.run(trace, initial_members=initial)
        curve.append((capacity, report.admin_seconds,
                      report.mean_decrypt_seconds))
    return curve


def test_tradeoff_directions(tradeoff_curve, sink, benchmark):
    rows = [[c, format_seconds(a), format_seconds(d)]
            for c, a, d in tradeoff_curve]
    sink.table("Ablation: partition-size trade-off (0.4 revocation trace)",
               ["capacity", "admin total", "mean decrypt"], rows)

    # Direction 1: admin cost falls as partitions grow.
    admin = [a for _, a, _ in tradeoff_curve]
    assert admin[0] > admin[-1], "larger partitions must help the admin"
    # Direction 2: decrypt cost rises as partitions grow.
    decrypt = [d for _, _, d in tradeoff_curve]
    assert decrypt[-1] > decrypt[0], "larger partitions must hurt clients"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_repartition_heuristic_on_off(sink, benchmark):
    """The §V-A occupancy heuristic must pay off under heavy revocation."""
    n_ops = scaled(OPS)
    initial = [f"init{i}" for i in range(64)]
    trace = generate_trace(n_ops, 0.9, initial_members=initial,
                           seed="ablation-heuristic")
    results = {}
    for auto in (True, False):
        system = make_bench_system(f"ablh-{auto}", 8, params="toy64",
                                   auto_repartition=auto)
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g",
                              seed=f"h{auto}")
        report = engine.run(trace, initial_members=initial)
        final_partitions = system.admin.group_state("g").table.partition_count
        results[auto] = (report.admin_seconds, final_partitions,
                         system.admin.metrics.repartitions)
    sink.table(
        "Ablation: re-partitioning heuristic on/off (0.9 revocation trace)",
        ["heuristic", "admin total", "final partitions", "repartitions"],
        [["on", format_seconds(results[True][0]), results[True][1],
          results[True][2]],
         ["off", format_seconds(results[False][0]), results[False][1],
          results[False][2]]],
    )
    assert results[True][2] > 0, "the heuristic must fire on this trace"
    assert results[True][1] <= results[False][1], (
        "merging must not leave more partitions than no merging"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_adaptive_policy_tracks_measured_optimum(tradeoff_curve, sink,
                                                 benchmark):
    """Calibrate the adaptive policy from the measured curve and check its
    recommendation lands inside the measured sweet range."""
    # Combined cost with one decrypt sampled per membership op.
    combined = [(c, a + d * scaled(OPS)) for c, a, d in tradeoff_curve]
    best_capacity = min(combined, key=lambda item: item[1])[0]

    # Calibrate coefficients from the endpoints of the measured curve.
    c_small, admin_small, dec_small = tradeoff_curve[0]
    c_large, admin_large, dec_large = tradeoff_curve[-1]
    c_rekey = admin_large * c_large / (scaled(OPS) * 64)
    c_decrypt = dec_large / (c_large ** 2)
    policy = AdaptivePolicy(c_rekey=max(c_rekey, 1e-9),
                            c_decrypt=max(c_decrypt, 1e-12),
                            min_capacity=CAPACITIES[0],
                            max_capacity=CAPACITIES[-1])
    recommended = policy.optimal_capacity(
        group_size=64, revocation_rate=0.4, decrypt_rate=1.0
    )
    sink.line(f"measured best capacity: {best_capacity}; "
              f"policy recommends: {recommended}")
    # Within one step of the measured optimum on the capacity ladder.
    ladder = CAPACITIES
    best_index = ladder.index(best_capacity)
    nearest = min(range(len(ladder)),
                  key=lambda i: abs(ladder[i] - recommended))
    assert abs(nearest - best_index) <= 1, (
        "the adaptive policy must land within one step of the optimum"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
