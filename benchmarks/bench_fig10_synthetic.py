"""Figure 10 — synthetic traces with increasing revocation rates.

Paper's observations (11 traces × 10,000 ops, partition sizes 1000-2000):

* total administrator replay time increases roughly linearly with the
  revocation ratio while adds dominate (up to ~50 %),
* plateaus between ~50 % and ~90 %,
* and *drops* beyond ~90 % because heavy revocation keeps merging sparse
  partitions (the re-partitioning heuristic), leaving fewer partitions to
  re-key per revocation.

Scaled down for pure Python: fewer ops and proportionally smaller
partitions; the revocation-rate axis is kept at the paper's 11 steps.
"""

from __future__ import annotations

import pytest

from repro.bench import format_seconds
from repro.workloads import IbbeSgxReplayAdapter, ReplayEngine
from repro.workloads.synthetic import revocation_rate_sweep, trace_stats

from conftest import make_bench_system, scaled

OPS_PER_TRACE = 150
RATE_STEPS = 11
PARTITION_SIZES = [8, 16]


def test_fig10_revocation_rate_sweep(sink, benchmark):
    n_ops = scaled(OPS_PER_TRACE)
    # The paper replays each trace against a standing group (revocations
    # then pay one re-key per partition); scale the initial population
    # with the op budget.
    initial = [f"init{i}" for i in range(max(16, n_ops // 2))]
    sweep = revocation_rate_sweep(n_ops, steps=RATE_STEPS, seed="fig10",
                                  initial_members=initial)
    rows = []
    totals = {}
    for capacity in PARTITION_SIZES:
        series = []
        for rate, trace in sweep:
            system = make_bench_system(
                f"fig10-{capacity}-{rate:.1f}", capacity, params="toy64"
            )
            engine = ReplayEngine(IbbeSgxReplayAdapter(system),
                                  group_id="g", seed=f"{capacity}-{rate}")
            report = engine.run(trace, initial_members=initial)
            series.append((rate, report.admin_seconds,
                           system.admin.metrics.repartitions))
            rows.append([capacity, f"{rate:.0%}",
                         format_seconds(report.admin_seconds),
                         report.adds, report.removes,
                         system.admin.metrics.repartitions])
        totals[capacity] = series
    sink.table(
        f"Fig 10: total replay time vs revocation rate ({n_ops} ops)",
        ["partition", "revocation rate", "admin total", "adds", "removes",
         "repartitions"],
        rows,
    )

    for capacity, series in totals.items():
        times = [t for _, t, _ in series]
        # Shape 1: replay cost rises while adds dominate: the 50 % point
        # is clearly above the 0 % point.
        assert times[5] > 1.5 * times[0], (
            f"capacity {capacity}: cost must rise up to ~50% revocations"
        )
        # Shape 2: the curve flattens/drops at the extreme end relative
        # to its mid-range growth (partition merging).  The 100 % trace
        # must not continue the pre-50 % growth slope.
        mid_growth = times[5] - times[0]
        tail_growth = times[10] - times[5]
        sink.line(
            f"  capacity {capacity}: growth 0→50% "
            f"{format_seconds(mid_growth)}, 50→100% "
            f"{format_seconds(tail_growth)} (paper: plateau then drop)"
        )
        assert tail_growth < mid_growth, (
            f"capacity {capacity}: the curve must flatten past 50%"
        )
        # Shape 3: high revocation rates exercise re-partitioning.
        assert series[-1][2] > 0, "100% revocations must trigger merges"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
