"""Figure 6 — system bootstrap: setup latency and key-extract throughput.

Paper's observations:

* 6a: system setup latency grows linearly with the partition size
  (~1.2 s per 1,000 users on their hardware);
* 6b: key-extract throughput is constant (~764 op/s), independent of the
  partition size.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import ibbe
from repro.bench import fit_power_law, format_seconds, time_call
from repro.crypto.rng import DeterministicRng

from conftest import bench_scale, make_bench_system, scaled

PARTITION_SIZES = [64, 128, 256, 512]
EXTRACTS_PER_SIZE = 20

#: Fig. 5 worker sweep: the paper parallelizes group creation across
#: enclave threads; we sweep the repro.par engine's process count.
WORKER_COUNTS = [1, 2, 4]
BOOTSTRAP_USERS = 10_000
BOOTSTRAP_CAPACITY = 500


def test_fig6a_setup_latency(std_group, sink, benchmark):
    rng = DeterministicRng("fig6a")
    points = []
    for m in (scaled(m) for m in PARTITION_SIZES):
        _, elapsed = time_call(ibbe.setup, std_group, m, rng)
        points.append((m, elapsed))
    fit = fit_power_law(points)
    sink.table(
        "Fig 6a: system setup latency per partition size",
        ["partition size", "latency"],
        [[m, format_seconds(t)] for m, t in points],
    )
    per_1000 = fit.predict(1000)
    sink.line(f"  fit: {fit.describe()}")
    sink.line(f"  projected setup @1000 users: {format_seconds(per_1000)} "
              "(paper: ~1.2 s growth per 1000)")
    assert 0.85 <= fit.exponent <= 1.15, "setup must be linear in m"

    benchmark.pedantic(
        lambda: ibbe.setup(std_group, scaled(64), rng),
        rounds=1, iterations=1,
    )


def test_fig6b_extract_throughput(std_group, sink, benchmark):
    rng = DeterministicRng("fig6b")
    rows = []
    throughputs = []
    for m in (scaled(m) for m in PARTITION_SIZES):
        msk, pk = ibbe.setup(std_group, m, rng)
        start = time.perf_counter()
        for i in range(EXTRACTS_PER_SIZE):
            ibbe.extract(msk, pk, f"user{i}")
        elapsed = time.perf_counter() - start
        throughput = EXTRACTS_PER_SIZE / elapsed
        throughputs.append((m, throughput))
        rows.append([m, f"{throughput:.0f} op/s"])
    sink.table("Fig 6b: key extract throughput per partition size",
               ["partition size", "throughput"], rows)
    sink.line("  (paper: ~764 op/s, constant across partition sizes)")

    # Constant across partition sizes: max/min within 40 %.
    values = [t for _, t in throughputs]
    assert max(values) / min(values) < 1.4, (
        "extract throughput must be independent of the partition size"
    )

    msk, pk = ibbe.setup(std_group, scaled(64), rng)
    benchmark(lambda: ibbe.extract(msk, pk, "bench-user"))


def test_fig6c_parallel_bootstrap_sweep(sink, benchmark):
    """Group-creation scaling across engine worker counts (paper Fig. 5).

    One std160 deployment bootstraps the same large group at each worker
    count; the device RNG is reset between rounds so every round consumes
    an identical randomness stream.  Two properties are checked:

    * partition metadata (ciphertext + envelope) is byte-identical at
      every worker count — the engine's determinism contract;
    * with >= 4 physical cores at full scale, 4 workers beat serial by
      >= 2x on a 10k-user bootstrap.
    """
    users = scaled(BOOTSTRAP_USERS)
    capacity = scaled(BOOTSTRAP_CAPACITY)
    members = [f"user{i:05d}" for i in range(users)]
    system = make_bench_system("fig6c", capacity, params="std160")

    rows, timings, reference = [], {}, None
    for workers in WORKER_COUNTS:
        system.device.rng = DeterministicRng("fig6c-round")
        system.set_workers(workers)
        system.admin.warm_enclave_workers()
        start = time.perf_counter()
        system.admin.create_group("boot", members)
        elapsed = time.perf_counter() - start
        timings[workers] = elapsed

        state = system.admin.group_state("boot")
        blobs = {
            pid: (state.records[pid].ciphertext, state.records[pid].envelope)
            for pid in state.table.partition_ids
        }
        if reference is None:
            reference = blobs
        else:
            assert blobs == reference, (
                f"group metadata diverged at workers={workers}"
            )
        snapshot = system.telemetry()["metrics"]
        rows.append([workers, format_seconds(elapsed),
                     f"{timings[1] / elapsed:.2f}x",
                     int(snapshot["par.tasks"])])
        system.admin.delete_group("boot")
        system.reset_metrics()

    sink.table(
        f"Fig 6c: {users}-user bootstrap vs engine worker count "
        f"(capacity {capacity}, {len(reference)} partitions)",
        ["workers", "create_group", "speedup", "par.tasks"], rows,
    )
    sink.line("  (partition ciphertexts + envelopes byte-identical "
              "across all worker counts)")

    cores = os.cpu_count() or 1
    if cores >= 4 and bench_scale() >= 1.0:
        speedup = timings[1] / timings[4]
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at 4 workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    else:
        sink.line(f"  (speedup assertion skipped: {cores} cores, "
                  f"scale {bench_scale()})")

    system.set_workers(1)
    benchmark.pedantic(
        lambda: (system.admin.create_group("boot", members[:capacity]),
                 system.admin.delete_group("boot")),
        rounds=1, iterations=1,
    )
    system.close()
