"""Figure 6 — system bootstrap: setup latency and key-extract throughput.

Paper's observations:

* 6a: system setup latency grows linearly with the partition size
  (~1.2 s per 1,000 users on their hardware);
* 6b: key-extract throughput is constant (~764 op/s), independent of the
  partition size.
"""

from __future__ import annotations

import time

import pytest

from repro import ibbe
from repro.bench import fit_power_law, format_seconds, time_call
from repro.crypto.rng import DeterministicRng

from conftest import scaled

PARTITION_SIZES = [64, 128, 256, 512]
EXTRACTS_PER_SIZE = 20


def test_fig6a_setup_latency(std_group, sink, benchmark):
    rng = DeterministicRng("fig6a")
    points = []
    for m in (scaled(m) for m in PARTITION_SIZES):
        _, elapsed = time_call(ibbe.setup, std_group, m, rng)
        points.append((m, elapsed))
    fit = fit_power_law(points)
    sink.table(
        "Fig 6a: system setup latency per partition size",
        ["partition size", "latency"],
        [[m, format_seconds(t)] for m, t in points],
    )
    per_1000 = fit.predict(1000)
    sink.line(f"  fit: {fit.describe()}")
    sink.line(f"  projected setup @1000 users: {format_seconds(per_1000)} "
              "(paper: ~1.2 s growth per 1000)")
    assert 0.85 <= fit.exponent <= 1.15, "setup must be linear in m"

    benchmark.pedantic(
        lambda: ibbe.setup(std_group, scaled(64), rng),
        rounds=1, iterations=1,
    )


def test_fig6b_extract_throughput(std_group, sink, benchmark):
    rng = DeterministicRng("fig6b")
    rows = []
    throughputs = []
    for m in (scaled(m) for m in PARTITION_SIZES):
        msk, pk = ibbe.setup(std_group, m, rng)
        start = time.perf_counter()
        for i in range(EXTRACTS_PER_SIZE):
            ibbe.extract(msk, pk, f"user{i}")
        elapsed = time.perf_counter() - start
        throughput = EXTRACTS_PER_SIZE / elapsed
        throughputs.append((m, throughput))
        rows.append([m, f"{throughput:.0f} op/s"])
    sink.table("Fig 6b: key extract throughput per partition size",
               ["partition size", "throughput"], rows)
    sink.line("  (paper: ~764 op/s, constant across partition sizes)")

    # Constant across partition sizes: max/min within 40 %.
    values = [t for _, t in throughputs]
    assert max(values) / min(values) < 1.4, (
        "extract throughput must be independent of the partition size"
    )

    msk, pk = ibbe.setup(std_group, scaled(64), rng)
    benchmark(lambda: ibbe.extract(msk, pk, "bench-user"))
