"""Ablation — the single cut that defines IBBE-SGX (§IV-B), plus the two
implementation optimizations this reproduction adds.

1. **MSK vs PK encryption**: having γ inside the enclave turns the O(n²)
   eq.-4 expansion into the O(n) eq.-3 product.  Head-to-head over the
   broadcast-set size.
2. **Incremental updates vs re-encryption**: A-E/A-F O(1) add/remove
   against the classic full re-encryption.
3. **Multi-exponentiation** (ours): interleaved multi-exp vs the
   PBC-style sequential exponentiations in PK-path assembly.
4. **Fixed-base precomputation** (ours): window tables for w/v/h.
"""

from __future__ import annotations

import pytest

from repro import ibbe
from repro.bench import format_seconds, time_call
from repro.crypto.rng import DeterministicRng

from conftest import scaled

SIZES = [32, 64, 128, 256]


@pytest.fixture(scope="module")
def setup_std(std_group):
    rng = DeterministicRng("ablation-msk")
    msk, pk = ibbe.setup(std_group, m=scaled(256), rng=rng)
    return msk, pk, rng


def test_msk_vs_pk_encryption(setup_std, sink, benchmark):
    msk, pk, rng = setup_std
    rows = []
    ratios = []
    for n in (scaled(s) for s in SIZES):
        members = [f"u{i}" for i in range(n)]
        _, t_pk = time_call(ibbe.encrypt_pk, pk, members, rng)
        _, t_msk = time_call(ibbe.encrypt_msk, msk, pk, members, rng)
        rows.append([n, format_seconds(t_pk), format_seconds(t_msk),
                     f"{t_pk / t_msk:.1f}x"])
        ratios.append((n, t_pk / t_msk))
    sink.table("Ablation: PK-path (classic IBBE) vs MSK-path (IBBE-SGX)",
               ["set size", "encrypt_pk", "encrypt_msk", "speedup"], rows)

    # The MSK path wins at every size, and its advantage grows with n
    # (constant #exps vs n exps + n² expansion).
    assert all(ratio > 2 for _, ratio in ratios)
    assert ratios[-1][1] > ratios[0][1]

    members = [f"u{i}" for i in range(scaled(64))]
    benchmark.pedantic(lambda: ibbe.encrypt_msk(msk, pk, members, rng),
                       rounds=1, iterations=1)


def test_incremental_vs_reencrypt(setup_std, sink, benchmark):
    msk, pk, rng = setup_std
    n = scaled(128)
    members = [f"u{i}" for i in range(n)]
    _, ct = ibbe.encrypt_msk(msk, pk, members, rng)

    _, t_add = time_call(ibbe.add_user_msk, msk, pk, ct, "new")
    _, t_remove = time_call(ibbe.remove_user_msk, msk, pk, ct,
                            members[0], rng)
    _, t_rekey = time_call(ibbe.rekey, pk, ct, rng)
    _, t_full_msk = time_call(ibbe.encrypt_msk, msk, pk, members, rng)
    _, t_full_pk = time_call(ibbe.reencrypt_pk, pk, members, rng)

    sink.table(
        f"Ablation: incremental updates vs re-encryption (n = {n})",
        ["operation", "latency"],
        [["add (A-E, O(1))", format_seconds(t_add)],
         ["remove (A-F, O(1))", format_seconds(t_remove)],
         ["rekey (A-G, O(1))", format_seconds(t_rekey)],
         ["re-encrypt via MSK (O(n))", format_seconds(t_full_msk)],
         ["re-encrypt via PK (O(n²))", format_seconds(t_full_pk)]],
    )
    assert t_add < t_full_pk
    assert t_remove < t_full_pk
    assert t_rekey < t_full_pk
    benchmark.pedantic(lambda: ibbe.add_user_msk(msk, pk, ct, "bench"),
                       rounds=1, iterations=1)


def test_multi_exp_optimization(setup_std, sink, benchmark):
    msk, pk, rng = setup_std
    n = scaled(128)
    members = [f"u{i}" for i in range(n)]
    _, t_seq = time_call(ibbe.encrypt_pk, pk, members, rng,
                         use_multi_exp=False)
    _, t_multi = time_call(ibbe.encrypt_pk, pk, members, rng,
                           use_multi_exp=True)
    sink.line(f"PK-path assembly (n={n}): sequential "
              f"{format_seconds(t_seq)}, multi-exp "
              f"{format_seconds(t_multi)} "
              f"({t_seq / t_multi:.1f}x)")
    assert t_multi < t_seq, "interleaved multi-exp must win"
    benchmark.pedantic(
        lambda: ibbe.encrypt_pk(pk, members, rng, use_multi_exp=True),
        rounds=1, iterations=1,
    )


def test_fixed_base_precomputation(std_group, sink, benchmark):
    rng = DeterministicRng("ablation-precomp")
    n = scaled(64)
    members = [f"u{i}" for i in range(n)]
    results = {}
    for precompute in (False, True):
        msk, pk = ibbe.setup(std_group, m=n, rng=rng,
                             precompute=precompute)
        _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        # Re-key is the hottest operation (once per partition per
        # revocation): measure a batch.
        def rekey_batch():
            for _ in range(10):
                ibbe.rekey(pk, ct, rng)
        _, elapsed = time_call(rekey_batch)
        results[precompute] = elapsed
    speedup = results[False] / results[True]
    sink.line(f"10× rekey: plain {format_seconds(results[False])}, "
              f"precomputed {format_seconds(results[True])} "
              f"({speedup:.1f}x)")
    assert speedup > 1.2, "window tables must speed up re-keying"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
