"""Figure 9 — Linux-kernel membership trace replay.

Paper's observations (43,468 ops, ≤2,803 concurrent users, 10 years):

* total administrator replay time: IBBE-SGX ~1 order of magnitude faster
  than HE; small partitions hurt (250 is ~2× worse than 1000) because
  revocations re-key every partition;
* average user decryption time grows quadratically with the partition
  size, while HE's stays constant.

The trace is synthesized to the paper's published statistics (the dataset
is offline-unavailable; see DESIGN.md), scaled down for pure Python, and
replayed against the full system (enclave + cloud) and the HE baseline.
"""

from __future__ import annotations

import pytest

from repro.baselines import HePkiScheme, HybridGroupManager
from repro.bench import format_seconds
from repro.crypto.rng import DeterministicRng
from repro.workloads import (
    HybridReplayAdapter,
    IbbeSgxReplayAdapter,
    KernelTraceConfig,
    ReplayEngine,
    synthesize_kernel_trace,
)
from repro.workloads.synthetic import trace_stats

from conftest import bench_scale, make_bench_system

#: Scaled-down mirror of the paper's setup: the trace peak (2803 → ~28)
#: and the partition-size sweep (250..2803 → 4..32) keep the same ratios
#: to the group size.
TRACE_SCALE = 0.01
PARTITION_SIZES = [4, 8, 16, 32]


@pytest.fixture(scope="module")
def trace():
    config = KernelTraceConfig(scale=TRACE_SCALE * bench_scale())
    operations = synthesize_kernel_trace(config)
    return operations


def test_fig9_kernel_trace_replay(trace, sink, benchmark):
    stats = trace_stats(trace)
    sink.line(f"trace: {stats.describe()}")

    rows = []
    ibbe_results = {}
    for capacity in PARTITION_SIZES:
        system = make_bench_system(f"fig9-{capacity}", capacity,
                                   params="toy64")
        engine = ReplayEngine(IbbeSgxReplayAdapter(system), group_id="g",
                              decrypt_sample_every=20, seed=f"c{capacity}")
        report = engine.run(trace)
        ibbe_results[capacity] = report
        rows.append([
            f"IBBE-SGX/{capacity}",
            format_seconds(report.admin_seconds),
            format_seconds(report.mean_decrypt_seconds),
            system.admin.metrics.repartitions,
        ])

    manager = HybridGroupManager(
        HePkiScheme(rng=DeterministicRng("fig9-he-k")),
        rng=DeterministicRng("fig9-he"),
    )
    he_engine = ReplayEngine(HybridReplayAdapter(manager), group_id="g",
                             decrypt_sample_every=20, seed="he")
    he_report = he_engine.run(trace)
    rows.append(["HE", format_seconds(he_report.admin_seconds),
                 format_seconds(he_report.mean_decrypt_seconds), "-"])

    sink.table(
        "Fig 9: kernel-trace replay (admin total / mean user decrypt)",
        ["configuration", "admin total", "mean decrypt", "repartitions"],
        rows,
    )

    # Shape 1: IBBE-SGX beats HE on total admin time for the larger
    # partition sizes (paper: ~1 order of magnitude).
    best = min(r.admin_seconds for r in ibbe_results.values())
    ratio = he_report.admin_seconds / best
    sink.line(f"  HE/IBBE-SGX best admin total: {ratio:.1f}x "
              "(paper: ~1 order of magnitude)")
    assert ratio > 2, "IBBE-SGX must beat HE on the kernel trace"

    # Shape 2: small partitions are worse for the administrator
    # (paper: 250 is ~2x worse than 1000).
    smallest = ibbe_results[PARTITION_SIZES[0]].admin_seconds
    largest = ibbe_results[PARTITION_SIZES[-1]].admin_seconds
    sink.line(f"  admin total smallest/largest partition: "
              f"{smallest / largest:.2f}x (paper: ~2x)")
    assert smallest > largest, (
        "smaller partitions must cost the administrator more"
    )

    # Shape 3: decrypt time grows with the partition size; HE's does not
    # depend on it (single public-key operation).
    decrypts = [ibbe_results[c].mean_decrypt_seconds
                for c in PARTITION_SIZES]
    assert decrypts[-1] > decrypts[0], (
        "larger partitions must slow user decryption"
    )
    assert he_report.mean_decrypt_seconds < decrypts[-1]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
