"""Ablation — client decrypt-hint caching (our extension beyond the paper).

The quadratic part of IBBE decryption (polynomial expansion +
multi-exponentiation) depends only on the partition's member set, not on
the ciphertext.  Since every revocation re-keys *every* partition
(Algorithm 3), clients under churn repeatedly decrypt fresh ciphertexts
over an unchanged member set — exactly the case the hint cache turns into
two pairings.

This bench replays a revocation-heavy workload from a client's perspective
with the cache enabled vs disabled.
"""

from __future__ import annotations

import time

import pytest

from repro import ibbe
from repro.bench import format_seconds
from repro.crypto.rng import DeterministicRng

from conftest import scaled

PARTITION_SIZE = 128
REKEYS = 12


def test_client_cache_under_rekey_churn(std_group, sink, benchmark):
    rng = DeterministicRng("ablation-client-cache")
    n = scaled(PARTITION_SIZE)
    msk, pk = ibbe.setup(std_group, m=n, rng=rng)
    members = [f"u{i}" for i in range(n)]
    usk = ibbe.extract(msk, pk, members[0])
    bk, ct = ibbe.encrypt_msk(msk, pk, members, rng)

    # A revocation storm: the partition is re-keyed over and over (its
    # member set unchanged — the user is in another partition's blast
    # radius each time).
    ciphertexts = []
    for _ in range(scaled(REKEYS)):
        bk, ct = ibbe.rekey(pk, ct, rng)
        ciphertexts.append((bk, ct))

    start = time.perf_counter()
    for bk_expected, ciphertext in ciphertexts:
        assert ibbe.decrypt(pk, usk, members, ciphertext) == bk_expected
    cold = time.perf_counter() - start

    hint = ibbe.prepare_decryption(pk, usk, members)
    start = time.perf_counter()
    for bk_expected, ciphertext in ciphertexts:
        assert ibbe.decrypt_with_hint(pk, usk, hint,
                                      ciphertext) == bk_expected
    warm = time.perf_counter() - start

    speedup = cold / warm
    sink.line(
        f"{len(ciphertexts)} re-key decrypts @ partition {n}: "
        f"plain {format_seconds(cold)}, hint-cached {format_seconds(warm)} "
        f"({speedup:.1f}x)"
    )
    assert speedup > 1.5, "the hint cache must amortize the expansion"

    benchmark.pedantic(
        lambda: ibbe.decrypt_with_hint(pk, usk, hint, ciphertexts[0][1]),
        rounds=1, iterations=1,
    )


def test_cache_speedup_grows_with_partition(std_group, sink, benchmark):
    """The amortized win grows quadratically with the partition size."""
    rng = DeterministicRng("ablation-client-cache2")
    speedups = []
    for n in (scaled(s) for s in (32, 128)):
        msk, pk = ibbe.setup(std_group, m=n, rng=rng)
        members = [f"u{i}" for i in range(n)]
        usk = ibbe.extract(msk, pk, members[0])
        _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        bk, ct = ibbe.rekey(pk, ct, rng)

        start = time.perf_counter()
        ibbe.decrypt(pk, usk, members, ct)
        cold = time.perf_counter() - start
        hint = ibbe.prepare_decryption(pk, usk, members)
        start = time.perf_counter()
        ibbe.decrypt_with_hint(pk, usk, hint, ct)
        warm = time.perf_counter() - start
        speedups.append((n, cold / warm))
    for n, s in speedups:
        sink.line(f"  partition {n}: per-decrypt speedup {s:.1f}x")
    assert speedups[-1][1] > speedups[0][1], (
        "larger partitions must benefit more"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
