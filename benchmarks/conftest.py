"""Shared benchmark fixtures and result recording.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Because the substrate is pure Python while
the paper's is C inside real SGX, absolute numbers differ; each bench

* measures a sweep at sizes feasible in pure Python,
* fits the operation's complexity curve (Table I) to the measurements, and
* extrapolates to the paper's axis to make the shape comparison explicit.

Series are printed and also appended to ``benchmarks/results/*.txt`` so a
full run leaves a reviewable record (EXPERIMENTS.md quotes those files).

Environment knobs:

* ``REPRO_BENCH_SCALE`` (float, default 1.0) — multiplies sweep sizes for
  the macro benchmarks; 0.5 halves them for quick runs, 2.0 doubles.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import quickstart_system
from repro.crypto.rng import DeterministicRng
from repro.pairing import PairingGroup, preset

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2) -> int:
    return max(minimum, int(n * bench_scale()))


class ResultSink:
    """Collects printed series and persists them per benchmark module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lines = []
        RESULTS_DIR.mkdir(exist_ok=True)

    def line(self, text: str = "") -> None:
        self._lines.append(text)
        print(text)

    def table(self, title: str, headers, rows) -> None:
        from repro.bench import print_table
        self.line(f"\n== {title} ==")
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
            if rows else len(str(headers[i]))
            for i in range(len(headers))
        ]
        header = "  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers))
        self._lines.append(header)
        self._lines.append("-" * len(header))
        print(header)
        print("-" * len(header))
        for row in rows:
            text = "  ".join(str(c).ljust(widths[i])
                             for i, c in enumerate(row))
            self._lines.append(text)
            print(text)

    def flush(self) -> None:
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self._lines) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def sink(request):
    sink = ResultSink(Path(request.module.__file__).stem)
    yield sink
    sink.flush()


@pytest.fixture(scope="session")
def std_group() -> PairingGroup:
    """PBC a.param-equivalent parameters (the paper's security level)."""
    return PairingGroup(preset("std160"))


@pytest.fixture(scope="session")
def toy_group() -> PairingGroup:
    """Fast toy parameters for the macro (trace-replay) benchmarks."""
    return PairingGroup(preset("toy64"))


def make_bench_system(seed: str, capacity: int, params: str = "toy64",
                      system_bound: int | None = None,
                      auto_repartition: bool = True,
                      pipeline: bool = True,
                      workers: int | None = 1,
                      precompute: bool = False):
    return quickstart_system(
        partition_capacity=capacity,
        params=params,
        rng=DeterministicRng(f"bench:{seed}"),
        auto_repartition=auto_repartition,
        system_bound=system_bound or capacity,
        pipeline=pipeline,
        workers=workers,
        precompute=precompute,
    )


#: The dotted metric names the pipeline reports track.  ``cloud.bytes_in``
#: is upload volume (put payloads), ``cloud.bytes_out`` download volume
#: (get payloads) — the asymmetric quantities cloud providers meter and
#: bill separately.
FOOTPRINT_METRICS = (
    "sgx.crossings",
    "sgx.ecalls",
    "cloud.requests",
    "cloud.batch_commits",
    "cloud.bytes_in",
    "cloud.bytes_out",
)


def footprint_counters(system) -> dict:
    """Boundary-crossing and cloud-traffic counters for pipeline reports,
    read from the unified telemetry snapshot (``System.telemetry()``)."""
    metrics = system.telemetry()["metrics"]
    return {name: metrics[name] for name in FOOTPRINT_METRICS}


def footprint_delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before[key] for key in before}


def traced_breakdown(sink, title: str, action) -> None:
    """Run ``action`` once with span tracing enabled and print the
    per-category self-time breakdown into the sink.

    Always a *separate* rerun, never the timed measurement — tracing
    overhead must not contaminate the numbers the assertions check."""
    from repro import obs

    tr = obs.tracer()
    was_enabled = tr.enabled
    tr.reset()
    tr.enable()
    try:
        action()
    finally:
        if not was_enabled:
            tr.disable()
    sink.line(f"\n  {title} (traced rerun):")
    for line in obs.breakdown_table(tr.spans()):
        sink.line(f"    {line}")
    # Persist the spans as a Chrome trace next to the text results, so a
    # reviewer can open the run in chrome://tracing / Perfetto.
    slug = "".join(c if c.isalnum() else "-" for c in title.lower())
    obs.write_chrome_trace(
        tr.spans(), RESULTS_DIR / f"{sink.name}.{slug}.trace.json"
    )
    tr.reset()
