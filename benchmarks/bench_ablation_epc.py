"""Ablation — enclave memory pressure of HE vs IBBE metadata (§III-B).

The paper's motivation for rejecting HE-inside-SGX: hybrid encryption's
group metadata grows linearly and would have to live inside the enclave to
be re-encrypted on every revocation, while EPC memory is limited (128 MiB)
and enclave memory accesses pay 19.5 %/102 % overheads (HotCalls).  This
bench models both designs' enclave working sets across group sizes and
reports page faults and modeled cycle costs.
"""

from __future__ import annotations

import pytest

from repro.crypto import ecies
from repro.sgx.epc import PAGE_SIZE, EpcModel

from conftest import scaled

#: Bytes of enclave-resident metadata per user under HE (one wrapped key).
HE_BYTES_PER_USER = ecies.ciphertext_overhead() + 32
#: Constant enclave working set for IBBE-SGX (MSK + one partition's state).
IBBE_WORKING_SET = 4096

GROUP_SIZES = [10_000, 100_000, 1_000_000, 4_000_000]
#: A small EPC (scaled with the sweep) keeps the simulation cheap while
#: preserving the ratio EPC-size : working-set the paper argues about.
EPC_BYTES = 16 * 1024 * 1024


def _simulate_revocation_pass(working_set_bytes: int) -> EpcModel:
    """One revocation re-encryption pass touching the whole metadata."""
    epc = EpcModel(capacity_bytes=EPC_BYTES)
    handle = epc.allocate(max(working_set_bytes, 1))
    # Read everything once, write everything once (re-encryption).
    epc.touch(handle, working_set_bytes, write=False)
    epc.touch(handle, working_set_bytes, write=True)
    return epc


def test_epc_pressure_he_vs_ibbe(sink, benchmark):
    rows = []
    he_faults = []
    for n in GROUP_SIZES:
        he = _simulate_revocation_pass(n * HE_BYTES_PER_USER)
        ibbe = _simulate_revocation_pass(IBBE_WORKING_SET)
        rows.append([
            n,
            n * HE_BYTES_PER_USER // 1024,
            he.stats.page_faults,
            f"{he.stats.cycles / 1e6:.1f}M",
            ibbe.stats.page_faults,
            f"{ibbe.stats.cycles / 1e6:.3f}M",
        ])
        he_faults.append((n, he.stats.page_faults))
    sink.table(
        "Ablation: EPC pressure of a revocation pass (HE vs IBBE-SGX)",
        ["group size", "HE metadata (KB)", "HE faults", "HE cycles",
         "IBBE faults", "IBBE cycles"],
        rows,
    )

    # IBBE's working set fits the EPC at every size; HE's does not beyond
    # EPC capacity, and its faults grow linearly (thrashing).
    ibbe_run = _simulate_revocation_pass(IBBE_WORKING_SET)
    assert ibbe_run.stats.evictions == 0
    big = next(f for n, f in he_faults if n * HE_BYTES_PER_USER > EPC_BYTES)
    assert big > EPC_BYTES // PAGE_SIZE, "HE must thrash beyond the EPC"
    # In the thrashing regime (working set >> EPC) every page faults on
    # both the read and the write pass, so faults grow linearly with the
    # group size; compare the two largest sizes (both thrashing).
    (n_a, f_a), (n_b, f_b) = he_faults[-2], he_faults[-1]
    assert f_b / f_a == pytest.approx(n_b / n_a, rel=0.15), (
        "HE fault count must grow linearly once the EPC is exceeded"
    )

    benchmark.pedantic(
        lambda: _simulate_revocation_pass(scaled(100_000) * HE_BYTES_PER_USER),
        rounds=1, iterations=1,
    )


def test_system_level_he_sgx_vs_ibbe_sgx(sink, benchmark):
    """Run the *implemented* rejected design (HE inside SGX,
    :mod:`repro.baselines.hybrid_sgx`) against IBBE-SGX on real workloads
    and compare the enclaves' EPC statistics — the measured version of
    the §III-B argument."""
    from repro.baselines import HeSgxEnclave, HeSgxGroupManager
    from repro.crypto import ecies as ecies_mod
    from repro.crypto.rng import DeterministicRng
    from repro.sgx.device import SgxDevice

    from conftest import make_bench_system

    group_size = scaled(192)
    removals = scaled(8)
    users = [f"u{i}" for i in range(group_size)]

    # HE-SGX on its own device.
    rng = DeterministicRng("epc-system-he")
    he_device = SgxDevice(rng=rng)
    he_manager = HeSgxGroupManager(HeSgxEnclave.load(he_device))
    for user in users:
        he_manager.register_user(user, ecies_mod.generate_keypair(rng))
    he_manager.create_group("g", users)
    for user in users[:removals]:
        he_manager.remove_user("g", user)
    he_stats = he_device.epc.stats

    # IBBE-SGX: the full system on toy params (EPC accounting is
    # parameter-independent).
    system = make_bench_system("epc-system-ibbe", 32, params="toy64",
                               auto_repartition=False)
    system.admin.create_group("g", users)
    for user in users[:removals]:
        system.admin.remove_user("g", user)
    ibbe_stats = system.device.epc.stats

    sink.table(
        f"System-level EPC cost: {removals} revocations on a "
        f"{group_size}-member group",
        ["design", "enclave bytes read", "enclave bytes written",
         "modeled cycles"],
        [["HE-SGX", he_stats.read_bytes, he_stats.written_bytes,
          f"{he_stats.cycles / 1e6:.2f}M"],
         ["IBBE-SGX", ibbe_stats.read_bytes, ibbe_stats.written_bytes,
          f"{ibbe_stats.cycles / 1e6:.2f}M"]],
    )
    ratio = he_stats.read_bytes / max(ibbe_stats.read_bytes, 1)
    sink.line(f"  HE-SGX/IBBE-SGX enclave read volume: {ratio:.1f}x")
    assert he_stats.read_bytes > 3 * ibbe_stats.read_bytes, (
        "HE-SGX must move far more data through the enclave"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_read_write_overhead_asymmetry(sink, benchmark):
    """The HotCalls overheads the paper cites: reads cost more than
    writes inside the enclave (102 % vs 19.5 %)."""
    epc = EpcModel(capacity_bytes=EPC_BYTES)
    handle = epc.allocate(PAGE_SIZE)
    epc.touch(handle, 10)  # fault the page in
    read_cost = epc.touch(handle, 100_000 % PAGE_SIZE or 1, write=False)
    write_cost = epc.touch(handle, 100_000 % PAGE_SIZE or 1, write=True)
    ratio = read_cost / write_cost
    sink.line(f"read/write cost ratio: {ratio:.2f} "
              "(model: 2.02/1.195 = 1.69)")
    assert ratio == pytest.approx(2.02 / 1.195, rel=0.01)
    benchmark(lambda: epc.touch(handle, 1024, write=False))
