"""Table I — operation complexities of IBBE-SGX vs classic IBBE.

The paper's table:

=====================  ==============  ==========
Operation               IBBE-SGX        IBBE
=====================  ==============  ==========
System setup            O(|p|)          O(|S|)
Extract user key        O(1)            O(1)
Create group key        |P|·O(|p|)      O(|S|²)
Add user to group       O(1)            —
Remove user from group  |P|·O(1)        —
Decrypt group key       O(|p|²)         O(|S|²)
=====================  ==============  ==========

This benchmark *verifies the complexity classes empirically*: it sweeps
the governing parameter of each operation, fits a power law, and asserts
the fitted exponent.  Constant-time operations are asserted by bounded
variation instead of a fit.  O(n²) entries whose quadratic term only
dominates beyond pure-Python scales (create-pk, decrypt) are verified on
their quadratic kernel, which the Fig. 2/8 benches measure in isolation.
"""

from __future__ import annotations

import pytest

from repro import ibbe
from repro.bench import fit_power_law, time_call
from repro.crypto.rng import DeterministicRng

from conftest import scaled


@pytest.fixture(scope="module")
def toy_setup(toy_group):
    rng = DeterministicRng("table1")
    msk, pk = ibbe.setup(toy_group, m=scaled(512), rng=rng)
    return msk, pk, rng


def _sweep(fn, sizes):
    return [(n, max(time_call(fn, n)[1], 1e-9)) for n in sizes]


def test_setup_linear_in_partition_bound(toy_group, sink, benchmark):
    rng = DeterministicRng("t1-setup")
    points = _sweep(lambda m: ibbe.setup(toy_group, m, rng),
                    [scaled(s) for s in (64, 128, 256, 512)])
    fit = fit_power_law(points)
    sink.line(f"setup: {fit.describe()}  [claim: O(|p|)]")
    assert 0.8 <= fit.exponent <= 1.25
    benchmark.pedantic(lambda: ibbe.setup(toy_group, scaled(64), rng),
                       rounds=1, iterations=1)


def test_extract_constant(toy_setup, sink, benchmark):
    msk, pk, rng = toy_setup
    times = []
    for i in range(30):
        _, t = time_call(ibbe.extract, msk, pk, f"user{i}")
        times.append(t)
    spread = max(times[5:]) / min(times[5:])
    sink.line(f"extract: spread {spread:.2f}x over 30 ops  [claim: O(1)]")
    assert spread < 12, "extract must not depend on any size parameter"
    benchmark(lambda: ibbe.extract(msk, pk, "bench"))


def test_create_msk_linear_in_members(toy_setup, sink, benchmark):
    msk, pk, rng = toy_setup
    sizes = [scaled(s) for s in (64, 128, 256, 512)]

    def create(n):
        return ibbe.encrypt_msk(msk, pk, [f"u{i}" for i in range(n)], rng)

    points = _sweep(create, sizes)
    fit = fit_power_law(points)
    sink.line(f"create (MSK path): {fit.describe()}  [claim: O(|p|)]")
    assert fit.exponent <= 1.3, "MSK-path encryption must be linear"
    benchmark.pedantic(lambda: create(scaled(64)), rounds=1, iterations=1)


def test_create_pk_quadratic_kernel(toy_group, sink, benchmark):
    """The classic-IBBE O(|S|²) term (eq. 4's polynomial expansion)."""
    from repro.mathutils.poly import monic_linear_product
    q = toy_group.q
    points = _sweep(
        lambda n: monic_linear_product(list(range(3, n + 3)), q),
        [512, 1024, 2048, 4096],
    )
    fit = fit_power_law(points)
    sink.line(f"create (PK path) kernel: {fit.describe()}  [claim: O(|S|²)]")
    assert fit.exponent > 1.7
    benchmark.pedantic(
        lambda: monic_linear_product(list(range(3, 515)), q),
        rounds=1, iterations=1,
    )


def test_add_constant(toy_setup, sink, benchmark):
    msk, pk, rng = toy_setup
    times = []
    for n in (scaled(s) for s in (16, 64, 256)):
        members = [f"u{i}" for i in range(n)]
        _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        _, t = time_call(ibbe.add_user_msk, msk, pk, ct, "newcomer")
        times.append((n, t))
    spread = max(t for _, t in times) / min(t for _, t in times)
    sink.line(f"add: spread {spread:.2f}x across set sizes  [claim: O(1)]")
    assert spread < 5, "add must not depend on the set size"
    members = [f"u{i}" for i in range(scaled(16))]
    _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
    benchmark(lambda: ibbe.add_user_msk(msk, pk, ct, "bench"))


def test_remove_constant_per_partition(toy_setup, sink, benchmark):
    """Per-partition removal is O(1) in the partition size; the full group
    operation is |P|·O(1) (asserted on the system level by Fig. 9)."""
    msk, pk, rng = toy_setup
    times = []
    for n in (scaled(s) for s in (16, 64, 256)):
        members = [f"u{i}" for i in range(n)]
        _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        _, t = time_call(ibbe.remove_user_msk, msk, pk, ct, members[0], rng)
        times.append((n, t))
    spread = max(t for _, t in times) / min(t for _, t in times)
    sink.line(f"remove (per partition): spread {spread:.2f}x  [claim: O(1)]")
    assert spread < 5
    members = [f"u{i}" for i in range(scaled(16))]
    _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
    benchmark.pedantic(
        lambda: ibbe.remove_user_msk(msk, pk, ct, members[0], rng),
        rounds=1, iterations=1,
    )


def test_rekey_constant(toy_setup, sink, benchmark):
    msk, pk, rng = toy_setup
    times = []
    for n in (scaled(s) for s in (16, 64, 256)):
        members = [f"u{i}" for i in range(n)]
        _, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        _, t = time_call(ibbe.rekey, pk, ct, rng)
        times.append((n, t))
    spread = max(t for _, t in times) / min(t for _, t in times)
    sink.line(f"rekey: spread {spread:.2f}x  [claim: O(1)]")
    assert spread < 5


def test_decrypt_scaling(toy_setup, sink, benchmark):
    """Decrypt = 2 pairings + O(|p|) multi-exp + O(|p|²) expansion; the
    measured totals must be superlinear-convex, and the kernel quadratic
    (kernel asserted by test_create_pk_quadratic_kernel on the same code
    path — monic_linear_product)."""
    msk, pk, rng = toy_setup
    points = []
    for n in (scaled(s) for s in (32, 128, 512)):
        members = [f"u{i}" for i in range(n)]
        bk, ct = ibbe.encrypt_msk(msk, pk, members, rng)
        usk = ibbe.extract(msk, pk, members[0])
        result, t = time_call(ibbe.decrypt, pk, usk, members, ct)
        assert result == bk
        points.append((n, t))
    marginal = [
        (t2 - t1) / (n2 - n1)
        for (n1, t1), (n2, t2) in zip(points, points[1:])
    ]
    sink.line(f"decrypt: marginal cost per member "
              f"{[f'{m * 1e6:.1f}µs' for m in marginal]}  [claim: O(|p|²)]")
    assert points[-1][1] > points[0][1]
    assert marginal[-1] > marginal[0], "decrypt marginal cost must grow"
