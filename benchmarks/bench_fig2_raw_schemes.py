"""Figure 2 — raw HE-PKI, HE-IBE and IBBE without SGX.

Paper's observations to reproduce:

* 2a (latency of group creation): HE-PKI fastest, HE-IBE a constant factor
  slower (pairing-based primitive), raw IBBE *much* slower — 150×/144×
  slower than HE-PKI at 10k/100k users — with quadratic growth.
* 2b (metadata expansion): IBBE constant (paper: 256 B); HE-PKI and HE-IBE
  linear (paper: ~27 MB at 100k users, ~274 MB at 1M).

We measure a sweep, fit each scheme's complexity class, and extrapolate to
the paper's axis (1k → 1M).
"""

from __future__ import annotations

import pytest

from repro import ibbe
from repro.baselines import (
    HeIbeScheme,
    HePkiScheme,
    HybridGroupManager,
    RawIbbeGroupManager,
)
from repro.bench import extrapolate, fit_power_law, format_bytes, format_seconds, time_call
from repro.crypto.rng import DeterministicRng

from conftest import scaled

SIZES = [8, 16, 32, 64]
PAPER_AXIS = [1_000, 10_000, 100_000, 1_000_000]


def _he_pki_create(n: int, seed: str):
    scheme = HePkiScheme(rng=DeterministicRng(f"{seed}-keys"))
    users = [f"u{i}" for i in range(n)]
    for user in users:
        scheme.register_user(user)
    manager = HybridGroupManager(scheme, rng=DeterministicRng(seed))
    _, elapsed = time_call(manager.create_group, "g", users)
    return elapsed, manager.crypto_footprint("g")


def _he_ibe_create(n: int, seed: str, group):
    scheme = HeIbeScheme(group, rng=DeterministicRng(f"{seed}-keys"))
    users = [f"u{i}" for i in range(n)]
    manager = HybridGroupManager(scheme, rng=DeterministicRng(seed))
    _, elapsed = time_call(manager.create_group, "g", users)
    return elapsed, manager.crypto_footprint("g")


def _raw_ibbe_create(n: int, seed: str, group):
    rng = DeterministicRng(f"{seed}-setup")
    _, pk = ibbe.setup(group, m=n, rng=rng)
    users = [f"u{i}" for i in range(n)]
    manager = RawIbbeGroupManager(pk, rng=DeterministicRng(seed))
    _, elapsed = time_call(manager.create_group, "g", users)
    return elapsed, manager.crypto_footprint("g")


@pytest.fixture(scope="module")
def sweep(std_group):
    sizes = [scaled(n) for n in SIZES]
    rows = {}
    for name, fn in [
        ("HE-PKI", lambda n: _he_pki_create(n, f"pki{n}")),
        ("HE-IBE", lambda n: _he_ibe_create(n, f"ibe{n}", std_group)),
        ("IBBE", lambda n: _raw_ibbe_create(n, f"ibbe{n}", std_group)),
    ]:
        rows[name] = [(n, *fn(n)) for n in sizes]
    return rows


def _quadratic_kernel_coefficient(q: int, sink) -> float:
    """Measure raw IBBE's quadratic kernel (the eq. 4 polynomial expansion)
    in isolation and return its per-n² seconds coefficient.

    At the small group sizes feasible for a full pure-Python creation, the
    O(n) multi-exponentiation dominates; the n² term only takes over around
    n ≈ 10⁴ (which is exactly the regime where the paper observes IBBE
    being 150× slower).  Modeling t(n) = a·n + b·n² with a measured ``b``
    keeps the extrapolation honest.
    """
    from repro.mathutils.poly import monic_linear_product
    points = []
    for n in (256, 512, 1024):
        roots = list(range(3, 3 + n))
        _, elapsed = time_call(monic_linear_product, roots, q)
        points.append((n, elapsed))
    fit = fit_power_law(points)
    sink.line(f"  quadratic kernel fit: {fit.describe()}")
    assert fit.exponent > 1.7, "polynomial expansion must be quadratic"
    return extrapolate(points, 1, exponent=2.0)


def test_fig2a_group_creation_latency(sweep, sink, benchmark, std_group):
    kernel_b = _quadratic_kernel_coefficient(std_group.q, sink)
    rows = []
    fits = {}
    for name, points in sweep.items():
        latency_points = [(n, t) for n, t, _ in points]
        fits[name] = fit_power_law(latency_points)
        for n, t, _ in points:
            rows.append([name, n, format_seconds(t), "measured"])
        for n in PAPER_AXIS:
            if name == "IBBE":
                # t(n) = a·n + b·n²: linear part anchored on measurements,
                # quadratic part from the isolated kernel measurement.
                linear = extrapolate(latency_points, n, exponent=1.0)
                projected = linear + kernel_b * n * n
                source = "extrapolated a·n + b·n²"
            else:
                projected = extrapolate(latency_points, n, exponent=1.0)
                source = "extrapolated n^1"
            rows.append([name, n, format_seconds(projected), source])
    sink.table("Fig 2a: group creation latency",
               ["scheme", "group size", "latency", "source"], rows)
    for name, fit in fits.items():
        sink.line(f"  fit[{name}]: {fit.describe()}")

    # Shape assertions (who wins, and by how much).
    def he_pki_at(n):
        return extrapolate([(a, b) for a, b, _ in sweep["HE-PKI"]], n,
                           exponent=1.0)

    def ibbe_at(n):
        linear = extrapolate([(a, b) for a, b, _ in sweep["IBBE"]], n,
                             exponent=1.0)
        return linear + kernel_b * n * n

    ratio_10k = ibbe_at(10_000) / he_pki_at(10_000)
    ratio_100k = ibbe_at(100_000) / he_pki_at(100_000)
    ratio_1m = ibbe_at(1_000_000) / he_pki_at(1_000_000)
    sink.line(f"  IBBE/HE-PKI @10k: {ratio_10k:.1f}x (paper: 150x)")
    sink.line(f"  IBBE/HE-PKI @100k: {ratio_100k:.1f}x (paper: 144x)")
    sink.line(f"  IBBE/HE-PKI @1M: {ratio_1m:.1f}x")
    sink.line(
        "  note: pure-Python EC ops are ~50x slower than the paper's "
        "native ECC while Z_q kernels are only ~3x slower, which shifts "
        "the IBBE/HE crossover right; the quadratic takeover itself is "
        "what the paper's claim rests on and is asserted below."
    )
    assert ratio_100k > ratio_10k, "the quadratic term must keep growing"
    assert ratio_1m > ratio_100k, "the quadratic term must keep growing"
    assert ratio_1m > 3, "raw IBBE must become impractical at 1M users"
    assert fits["HE-PKI"].exponent < 1.3, "HE-PKI should scale linearly"
    assert fits["HE-IBE"].exponent < 1.3, "HE-IBE should scale linearly"
    # HE-IBE pays a constant pairing factor over HE-PKI (Fig. 2a's gap).
    he_ibe_mean = sum(t for _, t, _ in sweep["HE-IBE"]) / len(sweep["HE-IBE"])
    he_pki_mean = sum(t for _, t, _ in sweep["HE-PKI"]) / len(sweep["HE-PKI"])
    assert he_ibe_mean > he_pki_mean

    # pytest-benchmark record: one representative raw-IBBE creation.
    benchmark.pedantic(
        lambda: _raw_ibbe_create(scaled(32), "bench-one", std_group),
        rounds=1, iterations=1,
    )


def test_fig2b_metadata_expansion(sweep, sink, benchmark):
    rows = []
    for name, points in sweep.items():
        size_points = [(n, s) for n, _, s in points]
        for n, _, s in points:
            rows.append([name, n, format_bytes(s), "measured"])
        exponent = 0.0 if name == "IBBE" else 1.0
        for n in PAPER_AXIS:
            if exponent == 0.0:
                projected = size_points[-1][1]
            else:
                projected = extrapolate(size_points, n, exponent=exponent)
            rows.append([name, n, format_bytes(projected),
                         f"extrapolated n^{exponent:g}"])
    sink.table("Fig 2b: group metadata expansion",
               ["scheme", "group size", "size", "source"], rows)

    ibbe_sizes = {s for _, _, s in sweep["IBBE"]}
    assert len(ibbe_sizes) == 1, "IBBE metadata must be constant-size"
    pki = [(n, s) for n, _, s in sweep["HE-PKI"]]
    assert pki[-1][1] / pki[0][1] == pytest.approx(
        pki[-1][0] / pki[0][0], rel=0.01
    ), "HE metadata must be linear in the group size"
    ibbe_at_1m = next(iter(ibbe_sizes))
    he_at_1m = extrapolate(pki, 1_000_000, exponent=1.0)
    orders = __import__("math").log10(he_at_1m / ibbe_at_1m)
    sink.line(f"  HE/IBBE footprint @1M: 10^{orders:.1f} (paper: ~6 orders)")
    assert orders > 4.5

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
