"""Figure 7 — create/remove latency and storage footprint, IBBE-SGX vs HE.

Paper's observations:

* 7a: IBBE-SGX creates and removes ~1.2 orders of magnitude faster than
  HE across group sizes, and its metadata is up to 6 orders smaller;
  compared to raw IBBE, IBBE-SGX creation is 2.4-3.9 orders faster.
* 7b: per partition size, remove costs about half of create, and smaller
  partitions only mildly inflate the footprint (432 B vs 128 B at 1M).

The driver measures the full system path (enclave ecalls + cloud pushes).
"""

from __future__ import annotations

import pytest

from repro import ibbe
from repro.baselines import HePkiScheme, HybridGroupManager
from repro.bench import (
    extrapolate,
    fit_power_law,
    format_bytes,
    format_seconds,
    time_call,
)
from repro.crypto.rng import DeterministicRng

from conftest import (
    footprint_counters,
    footprint_delta,
    make_bench_system,
    scaled,
    traced_breakdown,
)

GROUP_SIZES = [32, 64, 128, 256]
PARTITION_SIZE = 32
PAPER_AXIS = [1_000, 10_000, 100_000, 1_000_000]

# Fixed scale for the operation-pipeline report (not subject to
# REPRO_BENCH_SCALE): a whole-group operation spanning many partitions.
PIPELINE_MEMBERS = 256
PIPELINE_PARTITIONS = 16


def _ibbe_sgx_run(n: int, capacity: int):
    """Create a group of n users, then remove one member.

    Returns (create_seconds, remove_seconds, crypto_footprint_bytes)."""
    system = make_bench_system(f"fig7-{n}-{capacity}", capacity,
                               params="std160",
                               auto_repartition=False)
    users = [f"u{i}" for i in range(n)]
    _, create_s = time_call(system.admin.create_group, "g", users)
    footprint = system.admin.group_state("g").crypto_footprint()
    _, remove_s = time_call(system.admin.remove_user, "g", users[n // 2])
    return create_s, remove_s, footprint


def _he_run(n: int):
    scheme = HePkiScheme(rng=DeterministicRng(f"fig7-he-{n}"))
    users = [f"u{i}" for i in range(n)]
    for user in users:
        scheme.register_user(user)
    manager = HybridGroupManager(scheme, rng=DeterministicRng("fig7-he"))
    _, create_s = time_call(manager.create_group, "g", users)
    footprint = manager.crypto_footprint("g")
    _, remove_s = time_call(manager.remove_user, "g", users[n // 2])
    return create_s, remove_s, footprint


@pytest.fixture(scope="module")
def sweep7a():
    sizes = [scaled(n) for n in GROUP_SIZES]
    capacity = scaled(PARTITION_SIZE)
    return {
        "IBBE-SGX": [(n, *_ibbe_sgx_run(n, capacity)) for n in sizes],
        "HE": [(n, *_he_run(n)) for n in sizes],
    }


def test_fig7a_create_remove_footprint(sweep7a, sink, benchmark):
    rows = []
    for name, points in sweep7a.items():
        for n, create_s, remove_s, footprint in points:
            rows.append([name, n, format_seconds(create_s),
                         format_seconds(remove_s), format_bytes(footprint),
                         "measured"])
        # All three metrics scale linearly in the group size for both
        # schemes (IBBE-SGX per-partition costs × number of partitions;
        # HE per-user costs × users).
        for n in PAPER_AXIS:
            create_p = extrapolate(
                [(a, b) for a, b, _, _ in points], n, exponent=1.0)
            remove_p = extrapolate(
                [(a, c) for a, _, c, _ in points], n, exponent=1.0)
            foot_p = extrapolate(
                [(a, d) for a, _, _, d in points], n, exponent=1.0)
            rows.append([name, n, format_seconds(create_p),
                         format_seconds(remove_p), format_bytes(foot_p),
                         "extrapolated n^1"])
    sink.table(
        "Fig 7a: create / remove latency and metadata footprint",
        ["scheme", "group size", "create", "remove", "footprint", "source"],
        rows,
    )

    # Shape: IBBE-SGX beats HE on every metric by a stable factor.
    for metric, index, paper_factor in (
        ("create", 0, "1.2 orders"), ("remove", 1, "1.2 orders"),
        ("footprint", 2, "up to 6 orders"),
    ):
        ratios = [
            he[index] / sgx[index]
            for sgx, he in zip(
                [p[1:] for p in sweep7a["IBBE-SGX"]],
                [p[1:] for p in sweep7a["HE"]],
            )
        ]
        mean_ratio = sum(ratios) / len(ratios)
        sink.line(f"  HE/IBBE-SGX {metric}: {mean_ratio:.1f}x mean "
                  f"(paper: {paper_factor})")
        assert mean_ratio > 2, f"IBBE-SGX must win on {metric}"

    # Footprint: per-partition constant × partitions vs per-user linear.
    sgx_foot = [(n, f) for n, _, _, f in sweep7a["IBBE-SGX"]]
    he_foot = [(n, f) for n, _, _, f in sweep7a["HE"]]
    he_per_user = he_foot[-1][1] / he_foot[-1][0]
    sgx_per_user = sgx_foot[-1][1] / sgx_foot[-1][0]
    assert he_per_user > 3 * sgx_per_user

    benchmark.pedantic(lambda: _ibbe_sgx_run(scaled(32), scaled(16)),
                       rounds=1, iterations=1)


def test_fig7b_partition_size_effect(sink, benchmark):
    """Create/remove/footprint at fixed group size, varying partition.

    Run at partition sizes where, as in the paper's 1000-4000 range, the
    per-member O(|p|) hashing work in create is non-negligible next to the
    per-partition exponentiations — that imbalance is what makes remove
    cheaper than create (the paper measures ~half)."""
    group_size = scaled(1024)
    capacities = [scaled(c) for c in (128, 256, 512, 1024)]
    rows = []
    measured = []
    for capacity in capacities:
        create_s, remove_s, footprint = _ibbe_sgx_run(group_size, capacity)
        measured.append((capacity, create_s, remove_s, footprint))
        rows.append([capacity, format_seconds(create_s),
                     format_seconds(remove_s), format_bytes(footprint)])
    sink.table(
        f"Fig 7b: IBBE-SGX by partition size (group = {group_size})",
        ["partition size", "create", "remove", "footprint"], rows,
    )

    # Remove is cheaper than create (paper: roughly half; here the shared
    # record-signing overhead narrows the gap — see EXPERIMENTS.md).
    ratio = sum(r / c for _, c, r, _ in measured) / len(measured)
    sink.line(f"  remove/create mean ratio: {ratio:.2f} (paper: ~0.5)")
    assert ratio < 0.95, "remove must be cheaper than create"

    # Smaller partitions -> more partitions -> larger footprint, but the
    # degradation stays small (paper: 432 B vs 128 B at 1M).
    footprints = [f for _, _, _, f in measured]
    assert footprints[0] > footprints[-1]
    assert footprints[0] / footprints[-1] < 16

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig7c_rekey_boundary_footprint(sink, benchmark):
    """Operation-pipeline report: a whole-group rekey spanning every
    partition costs one enclave crossing and one cloud commit in the
    pipelined administrator, versus one cloud request per object in the
    sequential mode it replaced (descriptor + N records + sealed key)."""
    members = [f"u{i}" for i in range(PIPELINE_MEMBERS)]
    capacity = PIPELINE_MEMBERS // PIPELINE_PARTITIONS
    rows = []
    deltas = {}
    for label, pipeline in (("sequential (before)", False),
                            ("pipelined (after)", True)):
        system = make_bench_system(f"fig7c-{int(pipeline)}", capacity,
                                   auto_repartition=False,
                                   pipeline=pipeline)
        system.admin.create_group("g", members)
        assert (system.admin.group_state("g").table.partition_count
                == PIPELINE_PARTITIONS)
        counters = footprint_counters(system)
        _, elapsed = time_call(system.admin.rekey, "g")
        delta = footprint_delta(counters, footprint_counters(system))
        deltas[pipeline] = delta
        rows.append([label, delta["sgx.crossings"], delta["sgx.ecalls"],
                     delta["cloud.requests"], delta["cloud.batch_commits"],
                     format_bytes(delta["cloud.bytes_in"]),
                     format_seconds(elapsed)])
    sink.table(
        f"Fig 7c: rekey boundary footprint ({PIPELINE_MEMBERS} members, "
        f"{PIPELINE_PARTITIONS} partitions)",
        ["mode", "crossings", "ecalls", "cloud reqs", "commits",
         "uploaded", "latency"],
        rows,
    )

    after = deltas[True]
    before = deltas[False]
    assert after["sgx.crossings"] == 1, "pipelined rekey is one crossing"
    assert after["cloud.requests"] == 1, \
        "pipelined rekey is one cloud request"
    assert after["cloud.batch_commits"] == 1
    # Sequential mode pays per object: descriptor + records + sealed key.
    assert before["cloud.requests"] >= PIPELINE_PARTITIONS + 2
    assert before["cloud.batch_commits"] == 0
    # Both modes upload the same bytes — the pipeline batches, it does
    # not change the metadata.
    assert after["cloud.bytes_in"] == before["cloud.bytes_in"]

    # Where the rekey wall-clock goes: crossing vs cloud vs crypto.
    system = make_bench_system("fig7c-trace", capacity,
                               auto_repartition=False)
    system.admin.create_group("g", members)
    traced_breakdown(sink, "pipelined rekey time breakdown",
                     lambda: system.admin.rekey("g"))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
