"""Setuptools entry point.

A classic setup.py is kept (rather than PEP-660 metadata only) so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package is unavailable and pip falls back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "IBBE-SGX: cryptographic group access control using trusted "
        "execution environments (DSN'18 reproduction)"
    ),
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark"]},
)
